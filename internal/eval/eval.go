// Package eval regenerates every table and figure of the paper's
// evaluation (§VI): recovery coverage (Table I), survivability under
// fault injection (Tables II and III), baseline performance vs a
// monolithic kernel (Table IV), instrumentation slowdowns (Table V),
// memory overhead (Table VI) and service disruption (Figure 3).
// cmd/benchtables and the repository's bench_test.go are thin wrappers
// over this package.
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kernel"
	"repro/internal/memlog"
	"repro/internal/parallel"
	"repro/internal/seep"
	"repro/internal/testsuite"
	"repro/internal/unixbench"
	"repro/internal/usr"
)

// Scale trades evaluation fidelity for runtime.
type Scale struct {
	// IterScale scales Unixbench iteration counts.
	IterScale float64
	// SamplesPerSite and MaxRuns bound the fault campaigns.
	SamplesPerSite int
	MaxRuns        int
	// Seed drives everything.
	Seed uint64
	// Workers bounds how many independent simulated boots run
	// concurrently. Every table is a deterministic reduction over
	// per-run results collected by run index, so the output is
	// bit-identical for any worker count. Zero selects one worker per
	// CPU; 1 reproduces the historical serial path exactly.
	Workers int
}

// QuickScale is suitable for tests and testing.B benchmarks.
func QuickScale() Scale {
	return Scale{IterScale: 0.25, SamplesPerSite: 1, MaxRuns: 60, Seed: 42}
}

// FullScale reproduces the tables at full size (cmd/benchtables).
func FullScale() Scale {
	return Scale{IterScale: 1, SamplesPerSite: 4, MaxRuns: 0, Seed: 42}
}

// --- Table I: recovery coverage ---

// CoverageRow is one server's recovery coverage under both policies.
// Pessimistic/Enhanced are the basic-block proxies; CyclesPess/
// CyclesEnh weight by execution time, the paper's caption metric.
type CoverageRow struct {
	Server                string
	Pessimistic, Enhanced float64 // percent of basic blocks
	CyclesPess, CyclesEnh float64 // percent of execution cycles
	BlocksPess, BlocksEnh uint64
}

// Table1 measures per-server recovery coverage by running the
// prototype test suite under the pessimistic and enhanced policies.
type Table1 struct {
	Rows []CoverageRow
	// WeightedPessimistic/Enhanced are the block-weighted means (the
	// paper's 57.7% / 68.4%).
	WeightedPessimistic, WeightedEnhanced float64
	// CycleWeightedPessimistic/Enhanced weight by execution time, the
	// metric named in the paper's Table I caption.
	CycleWeightedPessimistic, CycleWeightedEnhanced float64
}

// RunTable1 regenerates Table I. The two coverage runs are independent
// machines and execute concurrently.
func RunTable1(sc Scale) (Table1, error) {
	var (
		pess, enh  map[string]seep.Stats
		errP, errE error
	)
	parallel.Do(sc.Workers,
		func() { pess, errP = coverageRun(seep.PolicyPessimistic, sc.Seed) },
		func() { enh, errE = coverageRun(seep.PolicyEnhanced, sc.Seed) },
	)
	if errP != nil {
		return Table1{}, fmt.Errorf("pessimistic run: %w", errP)
	}
	if errE != nil {
		return Table1{}, fmt.Errorf("enhanced run: %w", errE)
	}

	var t Table1
	var sumBlocksP, sumInP, sumBlocksE, sumInE uint64
	var sumCycP, sumCycInP, sumCycE, sumCycInE float64
	names := make([]string, 0, len(pess))
	for name := range pess {
		names = append(names, name)
	}
	sort.Strings(names)
	// Present rows in the paper's order where possible.
	order := []string{"pm", "vfs", "vm", "ds", "rs"}
	ordered := make([]string, 0, len(names))
	for _, n := range order {
		for _, have := range names {
			if have == n {
				ordered = append(ordered, n)
			}
		}
	}
	for _, n := range names {
		if !contains(ordered, n) {
			ordered = append(ordered, n)
		}
	}

	for _, name := range ordered {
		p, e := pess[name], enh[name]
		row := CoverageRow{
			Server:      name,
			Pessimistic: 100 * p.BlockCoverage(),
			Enhanced:    100 * e.BlockCoverage(),
			CyclesPess:  100 * p.CycleCoverage(),
			CyclesEnh:   100 * e.CycleCoverage(),
			BlocksPess:  p.BlocksIn + p.BlocksOut,
			BlocksEnh:   e.BlocksIn + e.BlocksOut,
		}
		t.Rows = append(t.Rows, row)
		sumBlocksP += row.BlocksPess
		sumInP += p.BlocksIn
		sumBlocksE += row.BlocksEnh
		sumInE += e.BlocksIn
		sumCycP += float64(p.CyclesIn + p.CyclesOut)
		sumCycInP += float64(p.CyclesIn)
		sumCycE += float64(e.CyclesIn + e.CyclesOut)
		sumCycInE += float64(e.CyclesIn)
	}
	if sumBlocksP > 0 {
		t.WeightedPessimistic = 100 * float64(sumInP) / float64(sumBlocksP)
	}
	if sumBlocksE > 0 {
		t.WeightedEnhanced = 100 * float64(sumInE) / float64(sumBlocksE)
	}
	if sumCycP > 0 {
		t.CycleWeightedPessimistic = 100 * sumCycInP / sumCycP
	}
	if sumCycE > 0 {
		t.CycleWeightedEnhanced = 100 * sumCycInE / sumCycE
	}
	return t, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// coverageRun executes the suite under policy and returns per-server
// window statistics.
func coverageRun(policy seep.Policy, seed uint64) (map[string]seep.Stats, error) {
	reg := usr.NewRegistry()
	testsuite.Register(reg)
	var report testsuite.Report
	sys := boot.Boot(boot.Options{
		Config:     core.Config{Policy: policy, Seed: seed},
		Registry:   reg,
		Heartbeats: true,
	}, testsuite.RunnerInit(&report))
	res := sys.Run(faultinject.RunLimit)
	if res.Outcome != kernel.OutcomeCompleted {
		return nil, fmt.Errorf("coverage run: %v (%s)", res.Outcome, res.Reason)
	}
	out := make(map[string]seep.Stats)
	for _, cs := range sys.Stats() {
		out[cs.Name] = cs.Coverage
	}
	return out, nil
}

// Render formats Table I like the paper: basic-block coverage (the
// measurement proxy) alongside time-weighted coverage (the caption's
// metric).
func (t Table1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Recovery coverage inside recovery windows\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %16s %16s\n",
		"Server", "Pess(blocks)", "Enh(blocks)", "Pess(cycles)", "Enh(cycles)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-8s %13.1f%% %13.1f%% %15.1f%% %15.1f%%\n",
			r.Server, r.Pessimistic, r.Enhanced, r.CyclesPess, r.CyclesEnh)
	}
	fmt.Fprintf(&b, "%-8s %13.1f%% %13.1f%% %15.1f%% %15.1f%%\n", "weighted",
		t.WeightedPessimistic, t.WeightedEnhanced,
		t.CycleWeightedPessimistic, t.CycleWeightedEnhanced)
	return b.String()
}

// --- Tables II and III: survivability ---

// SurvivabilityTable is Table II (fail-stop) or III (full EDFI).
type SurvivabilityTable struct {
	Model faultinject.Model
	Rows  []faultinject.CampaignResult
}

// policiesInTableOrder matches the paper's row order.
var policiesInTableOrder = []seep.Policy{
	seep.PolicyStateless, seep.PolicyNaive, seep.PolicyPessimistic, seep.PolicyEnhanced,
}

// RunSurvivability regenerates Table II (FailStop) or III (FullEDFI).
func RunSurvivability(model faultinject.Model, sc Scale) (SurvivabilityTable, error) {
	profile, err := faultinject.Profile(sc.Seed)
	if err != nil {
		return SurvivabilityTable{}, err
	}
	t := SurvivabilityTable{Model: model}
	// Each campaign fans its runs out internally; the policy rows stay
	// in the paper's order.
	for _, policy := range policiesInTableOrder {
		res := faultinject.RunCampaign(faultinject.CampaignConfig{
			Policy:         policy,
			Model:          model,
			Seed:           sc.Seed,
			SamplesPerSite: sc.SamplesPerSite,
			MaxRuns:        sc.MaxRuns,
			Workers:        sc.Workers,
		}, profile)
		t.Rows = append(t.Rows, res)
	}
	return t, nil
}

// Render formats the survivability table like the paper.
func (t SurvivabilityTable) Render() string {
	var b strings.Builder
	table := "II"
	if t.Model == faultinject.FullEDFI {
		table = "III"
	}
	fmt.Fprintf(&b, "Table %s — Survivability under random injection of %s faults\n", table, t.Model)
	fmt.Fprintf(&b, "%-12s %8s %8s %10s %8s %11s %8s\n",
		"Recovery", "Pass", "Fail", "Shutdown", "Crash", "Consistent", "Runs")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %7.1f%% %7.1f%% %9.1f%% %7.1f%% %10.1f%% %8d\n",
			r.Policy,
			r.Percent(faultinject.OutcomePass),
			r.Percent(faultinject.OutcomeFail),
			r.Percent(faultinject.OutcomeShutdown),
			r.Percent(faultinject.OutcomeCrash),
			r.ConsistentPercent(),
			r.Runs)
	}
	return b.String()
}

// --- Cascade table: multi-fault survivability (beyond the paper) ---

// MultiFaultTable aggregates multi-fault campaigns: one row per
// (policy, faults-per-boot) pair. It evaluates the cascade-tolerance
// sequencer, which the paper's one-failure-at-a-time experiments never
// exercise: faults land while other recoveries are pending, inside
// post-recovery windows, and inside the recovery path itself.
type MultiFaultTable struct {
	Rows []faultinject.MultiCampaignResult
}

// multiFaultPolicies are the rows of the cascade table: the two
// consistent-recovery policies the paper recommends.
var multiFaultPolicies = []seep.Policy{seep.PolicyPessimistic, seep.PolicyEnhanced}

// multiFaultCounts are the faults-per-boot columns of the cascade table.
var multiFaultCounts = []int{2, 3}

// RunMultiFault regenerates the cascade survivability table.
func RunMultiFault(sc Scale) (MultiFaultTable, error) {
	profile, err := faultinject.Profile(sc.Seed)
	if err != nil {
		return MultiFaultTable{}, err
	}
	runs := sc.MaxRuns / 4
	if runs < 8 {
		runs = 8
	}
	var t MultiFaultTable
	for _, policy := range multiFaultPolicies {
		for _, faults := range multiFaultCounts {
			res := faultinject.RunMultiCampaign(faultinject.MultiCampaignConfig{
				Policy:  policy,
				Model:   faultinject.FailStop,
				Faults:  faults,
				Runs:    runs,
				Seed:    sc.Seed,
				Workers: sc.Workers,
			}, profile)
			t.Rows = append(t.Rows, res)
		}
	}
	return t, nil
}

// Render formats the cascade table in the style of Tables II/III, with
// the extra degraded-pass class (survived by quarantining a component).
func (t MultiFaultTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cascade — Survivability under multi-fault injection (fail-stop faults, beyond the paper)\n")
	fmt.Fprintf(&b, "%-12s %7s %8s %9s %8s %10s %8s %11s %8s\n",
		"Recovery", "Faults", "Pass", "Degraded", "Fail", "Shutdown", "Crash", "Consistent", "Runs")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %7d %7.1f%% %8.1f%% %7.1f%% %9.1f%% %7.1f%% %10.1f%% %8d\n",
			r.Policy,
			r.Faults,
			r.Percent(faultinject.OutcomePass),
			r.Percent(faultinject.OutcomeDegradedPass),
			r.Percent(faultinject.OutcomeFail),
			r.Percent(faultinject.OutcomeShutdown),
			r.Percent(faultinject.OutcomeCrash),
			r.ConsistentPercent(),
			r.Runs)
	}
	return b.String()
}

// --- IPC reliability: survival vs transport fault rate (beyond the paper) ---

// IPCSweepTable reports suite survival and audited consistency as the
// background transport fault rate rises, with the end-to-end
// reliability layer (sequence numbers, retransmission, reply
// redelivery) absorbing the faults.
type IPCSweepTable struct {
	Policy seep.Policy
	Points []faultinject.SweepPoint
}

// ipcSweepRatesBP are the sweep's per-class fault rates in basis points
// per transmission: each of drop, duplicate, delay, reorder and corrupt
// fires at this rate, so total interference is five times the figure.
var ipcSweepRatesBP = []int{0, 25, 50, 100, 200}

// RunIPCSweep regenerates the IPC reliability table under the enhanced
// policy.
func RunIPCSweep(sc Scale) IPCSweepTable {
	runs := sc.SamplesPerSite*2 + 1
	return IPCSweepTable{
		Policy: seep.PolicyEnhanced,
		Points: faultinject.SweepIPC(seep.PolicyEnhanced, sc.Seed, ipcSweepRatesBP, runs, sc.Workers),
	}
}

// Render formats the IPC reliability table.
func (t IPCSweepTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IPC — Survivability and audited consistency vs transport fault rate (%s policy)\n", t.Policy)
	fmt.Fprintf(&b, "%-10s %8s %8s %10s %8s %11s %8s\n",
		"Rate(bp)", "Pass", "Fail", "Shutdown", "Crash", "Consistent", "Runs")
	for _, p := range t.Points {
		fmt.Fprintf(&b, "%-10d %7.1f%% %7.1f%% %9.1f%% %7.1f%% %10.1f%% %8d\n",
			p.RateBP,
			p.Percent(faultinject.OutcomePass),
			p.Percent(faultinject.OutcomeFail),
			p.Percent(faultinject.OutcomeShutdown),
			p.Percent(faultinject.OutcomeCrash),
			p.ConsistentPercent(),
			p.Runs)
	}
	return b.String()
}

// --- Warm boot: fork-from-image campaign setup (beyond the paper) ---

// WarmBootTable quantifies the snapshot/fork plane of the campaign
// drivers: per-machine setup cost of a cold boot (full boot plus suite
// install, run to the quiescence barrier) against a warm fork from a
// captured image, and the end-to-end throughput of a fail-stop campaign
// both ways. Times are wall-clock, so this section is measured rather
// than deterministic; campaign *outcomes* are bit-identical either way
// (enforced by the warm-fork equivalence suite).
type WarmBootTable struct {
	// ColdBootMS and ForkMS are mean per-machine setup times.
	ColdBootMS, ForkMS float64
	// SetupSpeedup is ColdBootMS / ForkMS.
	SetupSpeedup float64
	// Campaign throughput (fail-stop, enhanced policy), runs per second.
	Runs                           int
	ColdRunsPerSec, WarmRunsPerSec float64
	CampaignSpeedup                float64
	// Amdahl split of one armed run: a cold run pays setup + fault-free
	// suite prefix + post-trigger suffix; a ladder-served run pays a
	// fork plus the suffix. Means over the campaign plan, with the
	// ladder fully walked before timing (its one-time cost is amortized
	// across the campaign and reported by the throughput rows above).
	ArmedColdMS, ArmedWarmMS float64
	ArmedSpeedup             float64
	// Serving split of the warm campaign: runs forked from a mid-suite
	// ladder rung, from the boot barrier, and cold-boot fallbacks by
	// reason.
	LadderForks, BootForks, ColdBoots int
	Fallbacks                         map[string]int
}

// warmBootSetupIters is how many boots/forks the per-machine setup
// means average over.
const warmBootSetupIters = 8

// RunWarmBoot regenerates the warm-boot table.
func RunWarmBoot(sc Scale) (WarmBootTable, error) {
	opts := func() boot.Options {
		reg := usr.NewRegistry()
		testsuite.Register(reg)
		return boot.Options{
			Config:     core.Config{Policy: seep.PolicyEnhanced, Seed: sc.Seed},
			Registry:   reg,
			Heartbeats: true,
		}
	}

	var t WarmBootTable

	// Per-machine setup: cold boots to the barrier.
	start := time.Now()
	for i := 0; i < warmBootSetupIters; i++ {
		var report testsuite.Report
		sys := boot.Boot(opts(), testsuite.RunnerInit(&report))
		if !sys.Kernel().RunToBarrier(faultinject.RunLimit) {
			return t, fmt.Errorf("warm-boot table: cold boot never reached the barrier")
		}
		sys.Shutdown("warmboot table: cold boot measured")
	}
	t.ColdBootMS = msPer(time.Since(start), warmBootSetupIters)

	// Per-machine setup: forks from one captured image.
	var capReport testsuite.Report
	snap, err := boot.Capture(opts(), faultinject.RunLimit, testsuite.RunnerInit(&capReport))
	if err != nil {
		return t, fmt.Errorf("warm-boot table: %w", err)
	}
	start = time.Now()
	for i := 0; i < warmBootSetupIters; i++ {
		var report testsuite.Report
		sys, err := snap.Fork(boot.ForkParams{Seed: sc.Seed + uint64(i)}, testsuite.RunnerResume(&report))
		if err != nil {
			return t, fmt.Errorf("warm-boot table: %w", err)
		}
		sys.Shutdown("warmboot table: fork measured")
	}
	t.ForkMS = msPer(time.Since(start), warmBootSetupIters)
	if t.ForkMS > 0 {
		t.SetupSpeedup = t.ColdBootMS / t.ForkMS
	}

	// End-to-end campaign throughput, cold vs warm.
	profile, err := faultinject.Profile(sc.Seed)
	if err != nil {
		return t, err
	}
	cfg := faultinject.CampaignConfig{
		Policy:         seep.PolicyEnhanced,
		Model:          faultinject.FailStop,
		Seed:           sc.Seed,
		SamplesPerSite: sc.SamplesPerSite,
		MaxRuns:        sc.MaxRuns,
		Workers:        sc.Workers,
	}
	campaign := func(cold bool) (int, float64, faultinject.PlaneStats) {
		prev := faultinject.SetColdBootDefault(cold)
		defer faultinject.SetColdBootDefault(prev)
		start := time.Now()
		res, stats := faultinject.RunCampaignWithStats(cfg, profile)
		secs := time.Since(start).Seconds()
		runs := res.Runs + res.Untriggered
		if secs <= 0 {
			return runs, 0, stats
		}
		return runs, float64(runs) / secs, stats
	}
	t.Runs, t.ColdRunsPerSec, _ = campaign(true)
	var stats faultinject.PlaneStats
	_, t.WarmRunsPerSec, stats = campaign(false)
	if t.ColdRunsPerSec > 0 {
		t.CampaignSpeedup = t.WarmRunsPerSec / t.ColdRunsPerSec
	}
	t.LadderForks, t.BootForks, t.ColdBoots = stats.LadderForks, stats.BootForks, stats.ColdBoots
	t.Fallbacks = stats.Fallbacks

	// Armed-run Amdahl split: time the armed phase alone, cold and warm.
	plan := faultinject.PlanCampaign(cfg, profile)
	armed := func(cold bool, prewalk bool) (float64, error) {
		prev := faultinject.SetColdBootDefault(cold)
		defer faultinject.SetColdBootDefault(prev)
		runner := faultinject.NewArmedRunner(cfg, plan)
		defer runner.Close()
		if prewalk {
			// Walk the ladder and capture every snapshot the plan needs
			// outside the timed loop.
			for i, inj := range plan {
				runner.Run(cfg.Seed+uint64(i)*7919, inj)
			}
		}
		start := time.Now()
		for i, inj := range plan {
			runner.Run(cfg.Seed+uint64(i)*7919, inj)
		}
		if cold {
			s := runner.Stats()
			if s.LadderForks+s.BootForks > 0 {
				return 0, fmt.Errorf("warm-boot table: cold-pinned armed runs forked")
			}
		}
		return msPer(time.Since(start), len(plan)), nil
	}
	if len(plan) > 0 {
		if t.ArmedColdMS, err = armed(true, false); err != nil {
			return t, err
		}
		if t.ArmedWarmMS, err = armed(false, true); err != nil {
			return t, err
		}
		if t.ArmedWarmMS > 0 {
			t.ArmedSpeedup = t.ArmedColdMS / t.ArmedWarmMS
		}
	}
	return t, nil
}

func msPer(d time.Duration, n int) float64 {
	return float64(d.Microseconds()) / 1000 / float64(n)
}

// Render formats the warm-boot table.
func (t WarmBootTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Warm boot — Campaign setup via fork-from-image vs cold boot (wall-clock, beyond the paper)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %10s\n", "", "Cold boot", "Warm fork", "Speedup")
	fmt.Fprintf(&b, "%-22s %9.2f ms %9.2f ms %9.1fx\n",
		"Per-machine setup", t.ColdBootMS, t.ForkMS, t.SetupSpeedup)
	fmt.Fprintf(&b, "%-22s %8.1f r/s %8.1f r/s %9.1fx   (%d runs, fail-stop, enhanced)\n",
		"Campaign throughput", t.ColdRunsPerSec, t.WarmRunsPerSec, t.CampaignSpeedup, t.Runs)
	fmt.Fprintf(&b, "%-22s %9.2f ms %9.2f ms %9.1fx   (ladder pre-walked; warm = fork + suffix)\n",
		"Armed run", t.ArmedColdMS, t.ArmedWarmMS, t.ArmedSpeedup)
	fmt.Fprintf(&b, "Warm plane serving: %d ladder forks, %d boot forks, %d cold boots%s\n",
		t.LadderForks, t.BootForks, t.ColdBoots, renderFallbacks(t.Fallbacks))
	return b.String()
}

// renderFallbacks formats a fallback-reason histogram as " (reason: n, ...)".
func renderFallbacks(fallbacks map[string]int) string {
	if len(fallbacks) == 0 {
		return ""
	}
	reasons := make([]string, 0, len(fallbacks))
	for r := range fallbacks {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	var b strings.Builder
	b.WriteString(" (")
	for i, r := range reasons {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %d", r, fallbacks[r])
	}
	b.WriteString(")")
	return b.String()
}

// --- Tail elision: fingerprinted convergence (beyond the paper) ---

// TailElisionTable measures what suffix elision buys on top of the
// warm fork plane: campaign throughput with elision pinned off versus
// on, the serving split of the elided campaign, and the armed-run mean
// with the suffix executed versus spliced.
type TailElisionTable struct {
	// Campaign throughput over the warm plane (fail-stop, enhanced),
	// runs per second, with the suffix executed in full (-noelide)
	// versus spliced on fingerprint match.
	Runs                               int
	NoElideRunsPerSec, ElideRunsPerSec float64
	ElisionSpeedup                     float64
	// Serving split of the elided campaign: tails spliced, and full
	// executions by fallback reason.
	Elided           int
	ElisionFallbacks map[string]int
	// Three-term Amdahl split of one armed run, ladder pre-walked: a
	// full run pays fork + entire post-trigger suffix; an elided run
	// pays fork + pre-convergence prefix only. ElidedTailMS is the
	// difference — the tail the fingerprint match spliced away.
	ArmedFullMS, ArmedElidedMS, ElidedTailMS float64
}

// RunTailElision measures the tail-elision table. Both campaigns run
// over the warm plane; outcomes are bit-identical by the elision
// equivalence, so only the clock and the serving split differ.
func RunTailElision(sc Scale) (TailElisionTable, error) {
	var t TailElisionTable
	profile, err := faultinject.Profile(sc.Seed)
	if err != nil {
		return t, err
	}
	cfg := faultinject.CampaignConfig{
		Policy:         seep.PolicyEnhanced,
		Model:          faultinject.FailStop,
		Seed:           sc.Seed,
		SamplesPerSite: sc.SamplesPerSite,
		MaxRuns:        sc.MaxRuns,
		Workers:        sc.Workers,
	}
	prevCold := faultinject.SetColdBootDefault(false)
	defer faultinject.SetColdBootDefault(prevCold)
	campaign := func(noElide bool) (int, float64, faultinject.PlaneStats) {
		prev := faultinject.SetNoElideDefault(noElide)
		defer faultinject.SetNoElideDefault(prev)
		start := time.Now()
		res, stats := faultinject.RunCampaignWithStats(cfg, profile)
		secs := time.Since(start).Seconds()
		runs := res.Runs + res.Untriggered
		if secs <= 0 {
			return runs, 0, stats
		}
		return runs, float64(runs) / secs, stats
	}
	t.Runs, t.NoElideRunsPerSec, _ = campaign(true)
	var stats faultinject.PlaneStats
	_, t.ElideRunsPerSec, stats = campaign(false)
	if t.NoElideRunsPerSec > 0 {
		t.ElisionSpeedup = t.ElideRunsPerSec / t.NoElideRunsPerSec
	}
	t.Elided = stats.Elided
	t.ElisionFallbacks = stats.ElisionFallbacks

	// Armed-run split: walk the ladder and capture every snapshot the
	// plan needs outside the timed loop, then time the armed phase with
	// the suffix executed versus spliced.
	plan := faultinject.PlanCampaign(cfg, profile)
	armed := func(noElide bool) float64 {
		prev := faultinject.SetNoElideDefault(noElide)
		defer faultinject.SetNoElideDefault(prev)
		runner := faultinject.NewArmedRunner(cfg, plan)
		defer runner.Close()
		for i, inj := range plan {
			runner.Run(cfg.Seed+uint64(i)*7919, inj)
		}
		start := time.Now()
		for i, inj := range plan {
			runner.Run(cfg.Seed+uint64(i)*7919, inj)
		}
		return msPer(time.Since(start), len(plan))
	}
	if len(plan) > 0 {
		t.ArmedFullMS = armed(true)
		t.ArmedElidedMS = armed(false)
		t.ElidedTailMS = t.ArmedFullMS - t.ArmedElidedMS
	}
	return t, nil
}

// Render formats the tail-elision table.
func (t TailElisionTable) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tail elision — fingerprinted convergence splices the pathfinder's recorded suffix (beyond the paper)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %10s\n", "", "Full suffix", "Elided", "Speedup")
	fmt.Fprintf(&b, "%-22s %8.1f r/s %8.1f r/s %9.1fx   (%d runs, fail-stop, enhanced)\n",
		"Campaign throughput", t.NoElideRunsPerSec, t.ElideRunsPerSec, t.ElisionSpeedup, t.Runs)
	fmt.Fprintf(&b, "%-22s %9.2f ms %9.2f ms %9.2f ms spliced away\n",
		"Armed run", t.ArmedFullMS, t.ArmedElidedMS, t.ElidedTailMS)
	fmt.Fprintf(&b, "Elision serving: %d tails elided%s\n", t.Elided, renderFallbacks(t.ElisionFallbacks))
	return b.String()
}

// --- Table IV: baseline vs monolithic ---

// PerfRow pairs scores of one benchmark under two configurations.
type PerfRow struct {
	Name               string
	Monolithic, OSIRIS float64
	Slowdown           float64 // monolithic/OSIRIS score ratio
}

// Table4 is the baseline performance comparison.
type Table4 struct {
	Rows            []PerfRow
	GeomeanSlowdown float64
}

// runBenchMatrix executes every (config, benchmark) pair on the
// parallel engine and returns results grouped by config, each group in
// table order — byte-identical to running unixbench.RunAll per config
// serially, but with all machines of all configs in one work pool.
func runBenchMatrix(workers int, cfgs ...unixbench.Config) [][]unixbench.Result {
	bench := unixbench.All()
	flat := parallel.Map(workers, len(cfgs)*len(bench), func(i int) unixbench.Result {
		return unixbench.RunOne(bench[i%len(bench)], cfgs[i/len(bench)])
	})
	out := make([][]unixbench.Result, len(cfgs))
	for c := range cfgs {
		out[c] = flat[c*len(bench) : (c+1)*len(bench)]
	}
	return out
}

// RunTable4 regenerates Table IV: the recovery-free microkernel system
// against the monolithic cost model standing in for Linux.
func RunTable4(sc Scale) Table4 {
	grouped := runBenchMatrix(sc.Workers,
		unixbench.Config{
			Monolithic:      true,
			Instrumentation: memlog.Baseline,
			Seed:            sc.Seed,
			IterScale:       sc.IterScale,
		},
		unixbench.Config{
			Policy:          seep.PolicyEnhanced,
			Instrumentation: memlog.Baseline, // baseline build: no recovery
			Seed:            sc.Seed,
			IterScale:       sc.IterScale,
		})
	mono, micro := grouped[0], grouped[1]
	var t Table4
	logSum, n := 0.0, 0
	for i := range mono {
		row := PerfRow{Name: mono[i].Name, Monolithic: mono[i].Score, OSIRIS: micro[i].Score}
		if row.OSIRIS > 0 {
			row.Slowdown = row.Monolithic / row.OSIRIS
			logSum += ln(row.Slowdown)
			n++
		}
		t.Rows = append(t.Rows, row)
	}
	if n > 0 {
		t.GeomeanSlowdown = exp(logSum / float64(n))
	}
	return t
}

// Render formats Table IV.
func (t Table4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — Baseline performance vs monolithic kernel (scores, higher is better)\n")
	fmt.Fprintf(&b, "%-18s %14s %14s %10s\n", "Benchmark", "Monolithic", "OSIRIS-base", "Slowdown")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %14.1f %14.1f %9.2fx\n", r.Name, r.Monolithic, r.OSIRIS, r.Slowdown)
	}
	fmt.Fprintf(&b, "%-18s %14s %14s %9.2fx\n", "geomean", "", "", t.GeomeanSlowdown)
	return b.String()
}

// --- Table V: instrumentation slowdowns ---

// SlowdownRow is one benchmark's slowdown ratios against the baseline
// build (lower is better; 1.0 = no overhead).
type SlowdownRow struct {
	Name                               string
	Unoptimized, Pessimistic, Enhanced float64
}

// Table5 is the recovery-instrumentation overhead table.
type Table5 struct {
	Rows                                        []SlowdownRow
	GeoUnoptimized, GeoPessimistic, GeoEnhanced float64
}

// RunTable5 regenerates Table V: slowdown of the unoptimized build and
// of the optimized pessimistic/enhanced builds relative to the
// uninstrumented baseline.
func RunTable5(sc Scale) Table5 {
	grouped := runBenchMatrix(sc.Workers,
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.Baseline,
			Seed: sc.Seed, IterScale: sc.IterScale,
		},
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.Unoptimized,
			Seed: sc.Seed, IterScale: sc.IterScale,
		},
		unixbench.Config{
			Policy: seep.PolicyPessimistic, Instrumentation: memlog.Optimized,
			Seed: sc.Seed, IterScale: sc.IterScale,
		},
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.Optimized,
			Seed: sc.Seed, IterScale: sc.IterScale,
		})
	base, unopt, pess, enh := grouped[0], grouped[1], grouped[2], grouped[3]

	var t Table5
	var lu, lp, le float64
	n := 0
	for i := range base {
		row := SlowdownRow{Name: base[i].Name}
		if base[i].Score > 0 {
			row.Unoptimized = base[i].Score / unopt[i].Score
			row.Pessimistic = base[i].Score / pess[i].Score
			row.Enhanced = base[i].Score / enh[i].Score
			lu += ln(row.Unoptimized)
			lp += ln(row.Pessimistic)
			le += ln(row.Enhanced)
			n++
		}
		t.Rows = append(t.Rows, row)
	}
	if n > 0 {
		t.GeoUnoptimized = exp(lu / float64(n))
		t.GeoPessimistic = exp(lp / float64(n))
		t.GeoEnhanced = exp(le / float64(n))
	}
	return t
}

// Render formats Table V.
func (t Table5) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V — Slowdown ratio vs baseline (lower is better)\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %12s\n", "Benchmark", "Without opt.", "Pessimistic", "Enhanced")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %12.3f %12.3f %12.3f\n", r.Name, r.Unoptimized, r.Pessimistic, r.Enhanced)
	}
	fmt.Fprintf(&b, "%-18s %12.3f %12.3f %12.3f\n", "geomean", t.GeoUnoptimized, t.GeoPessimistic, t.GeoEnhanced)
	return b.String()
}

// --- Table VI: memory overhead ---

// MemoryRow is one component's memory accounting in bytes.
type MemoryRow struct {
	Server                    string
	Base, Clone, UndoLog, Sum int
}

// Table6 is the per-component memory overhead table.
type Table6 struct {
	Rows                                    []MemoryRow
	TotalBase, TotalClone, TotalUndo, Total int
}

// RunTable6 regenerates Table VI by running a write-heavy Unixbench
// workload mix and sampling per-component memory statistics.
func RunTable6(sc Scale) (Table6, error) {
	reg := usr.NewRegistry()
	testsuite.Register(reg)
	var report testsuite.Report
	sys := boot.Boot(boot.Options{
		Config:   core.Config{Policy: seep.PolicyEnhanced, Seed: sc.Seed},
		Registry: reg,
	}, testsuite.RunnerInit(&report))
	res := sys.Run(faultinject.RunLimit)
	if res.Outcome != kernel.OutcomeCompleted {
		return Table6{}, fmt.Errorf("memory run: %v (%s)", res.Outcome, res.Reason)
	}
	var t Table6
	for _, cs := range sys.Stats() {
		row := MemoryRow{
			Server:  cs.Name,
			Base:    cs.BaseBytes,
			Clone:   cs.CloneBytes,
			UndoLog: cs.MaxUndoLogBytes,
		}
		row.Sum = row.Clone + row.UndoLog
		t.Rows = append(t.Rows, row)
		t.TotalBase += row.Base
		t.TotalClone += row.Clone
		t.TotalUndo += row.UndoLog
		t.Total += row.Sum
	}
	return t, nil
}

// Render formats Table VI.
func (t Table6) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI — Per-component memory overhead (KiB)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %14s\n", "Server", "Base", "+clone", "+undo log", "Total overhead")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-8s %12d %12d %12d %14d\n",
			r.Server, kib(r.Base), kib(r.Clone), kib(r.UndoLog), kib(r.Sum))
	}
	fmt.Fprintf(&b, "%-8s %12d %12d %12d %14d\n",
		"total", kib(t.TotalBase), kib(t.TotalClone), kib(t.TotalUndo), kib(t.Total))
	return b.String()
}

func kib(bytes int) int { return (bytes + 1023) / 1024 }

// --- Figure 3: service disruption ---

// DisruptionPoint is one (interval, score) sample for one benchmark.
type DisruptionPoint struct {
	Interval uint64 // fault inflow interval in cycles; 0 = no faults
	Score    float64
}

// Figure3 holds the per-benchmark disruption series.
type Figure3 struct {
	// Intervals is the sweep, smallest first (excluding the fault-free
	// reference which is recorded as interval 0).
	Intervals []uint64
	Series    map[string][]DisruptionPoint
}

// RunFigure3 regenerates Figure 3: Unixbench scores as a function of
// the interval between fail-stop faults injected into PM inside its
// recovery window.
func RunFigure3(sc Scale, intervals []uint64) Figure3 {
	if len(intervals) == 0 {
		intervals = []uint64{50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000, 6_400_000}
	}
	fig := Figure3{Intervals: intervals, Series: make(map[string][]DisruptionPoint)}

	// Flatten the (benchmark, interval) sweep into one indexed job list
	// so every machine of the figure shares the worker pool. Interval 0
	// is the fault-free reference.
	bench := unixbench.All()
	sweep := append([]uint64{0}, intervals...)
	points := parallel.Map(sc.Workers, len(bench)*len(sweep), func(i int) DisruptionPoint {
		b := bench[i/len(sweep)]
		interval := sweep[i%len(sweep)]
		cfg := unixbench.Config{
			Policy:    seep.PolicyEnhanced,
			Seed:      sc.Seed,
			IterScale: sc.IterScale,
		}
		if interval > 0 {
			cfg.Hook = pmFaultInflow(interval)
		}
		r := unixbench.RunOne(b, cfg)
		return DisruptionPoint{Interval: interval, Score: r.Score}
	})
	for bi, b := range bench {
		fig.Series[b.Name] = points[bi*len(sweep) : (bi+1)*len(sweep)]
	}
	return fig
}

// pmFaultInflow installs a hook that fail-stops PM whenever its
// recovery window is open and at least interval cycles have passed
// since the previous injected fault (§VI-E: faults are injected only
// within the recovery window so the benchmark always completes).
func pmFaultInflow(interval uint64) func(sys *boot.System) {
	return func(sys *boot.System) {
		k := sys.Kernel()
		var next uint64 = uint64(k.Now()) + interval
		k.SetPointHook(func(ep kernel.Endpoint, name, site string) {
			if name != "pm" || k.InRecovery() {
				return
			}
			win := sys.ComponentWindow(kernel.EpPM)
			if win == nil || !win.Open() || !win.Replyable() {
				return
			}
			if uint64(k.Now()) < next {
				return
			}
			next = uint64(k.Now()) + interval
			panic("figure3: periodic fail-stop fault in PM")
		})
	}
}

// Render formats Figure 3 as a data table (series per benchmark)
// followed by an ASCII rendering of the figure itself: score relative
// to the fault-free run, per interval.
func (f Figure3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — Unixbench score vs fault-inflow interval into PM (cycles)\n")
	fmt.Fprintf(&b, "%-18s %12s", "Benchmark", "no-fault")
	for _, iv := range f.Intervals {
		fmt.Fprintf(&b, " %11d", iv)
	}
	b.WriteString("\n")
	names := make([]string, 0, len(f.Series))
	for n := range f.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-18s", n)
		for _, pt := range f.Series[n] {
			fmt.Fprintf(&b, " %11.1f", pt.Score)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")
	b.WriteString(f.Chart())
	return b.String()
}

// Chart renders the figure as ASCII art: one row per benchmark, one
// column per interval, each cell the score as a percentage of the
// fault-free score, bucketed into glyphs. Reading left (frequent
// faults) to right (rare faults) shows the paper's curves: PM-dependent
// benchmarks climb back to full speed, independent ones stay flat.
func (f Figure3) Chart() string {
	var b strings.Builder
	b.WriteString("Relative score (% of fault-free), left = most frequent faults\n")
	b.WriteString("    . <25%   - <50%   = <75%   + <95%   * >=95%\n\n")
	names := make([]string, 0, len(f.Series))
	for n := range f.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pts := f.Series[n]
		if len(pts) == 0 || pts[0].Score <= 0 {
			continue
		}
		ref := pts[0].Score
		fmt.Fprintf(&b, "%-18s |", n)
		for _, pt := range pts[1:] {
			rel := pt.Score / ref
			switch {
			case rel >= 0.95:
				b.WriteString(" *")
			case rel >= 0.75:
				b.WriteString(" +")
			case rel >= 0.50:
				b.WriteString(" =")
			case rel >= 0.25:
				b.WriteString(" -")
			default:
				b.WriteString(" .")
			}
		}
		b.WriteString(" |\n")
	}
	return b.String()
}

func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }
