package eval

import (
	"fmt"
	"strings"

	"repro/internal/memlog"
	"repro/internal/seep"
	"repro/internal/unixbench"
)

// AblationRow compares the slowdown of the two checkpointing strategies
// on one benchmark.
type AblationRow struct {
	Name              string
	UndoLog, FullCopy float64 // slowdown vs uninstrumented baseline
}

// Ablation quantifies the paper's §IV-C design rationale: per-request
// undo logging versus full-state checkpointing at OS request rates.
type Ablation struct {
	Rows                    []AblationRow
	GeoUndoLog, GeoFullCopy float64
}

// RunAblationCheckpointing measures both strategies against the
// uninstrumented baseline under the enhanced policy. All three
// configurations share the parallel engine's worker pool. The full-copy
// column pins the legacy clone-everything checkpoint path: the ablation
// reproduces the paper's §IV-C cost profile, which is exactly what the
// incremental dirty-set optimisation (see RunCheckpointing) removes.
func RunAblationCheckpointing(sc Scale) Ablation {
	grouped := runBenchMatrix(sc.Workers,
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.Baseline,
			Seed: sc.Seed, IterScale: sc.IterScale,
		},
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.Optimized,
			Seed: sc.Seed, IterScale: sc.IterScale,
		},
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.FullCopy,
			LegacyCheckpoint: true,
			Seed:             sc.Seed, IterScale: sc.IterScale,
		})
	base, undo, full := grouped[0], grouped[1], grouped[2]

	var a Ablation
	var lu, lf float64
	n := 0
	for i := range base {
		row := AblationRow{Name: base[i].Name}
		if base[i].Score > 0 && undo[i].Score > 0 && full[i].Score > 0 {
			row.UndoLog = base[i].Score / undo[i].Score
			row.FullCopy = base[i].Score / full[i].Score
			lu += ln(row.UndoLog)
			lf += ln(row.FullCopy)
			n++
		}
		a.Rows = append(a.Rows, row)
	}
	if n > 0 {
		a.GeoUndoLog = exp(lu / float64(n))
		a.GeoFullCopy = exp(lf / float64(n))
	}
	return a
}

// Render formats the ablation table.
func (a Ablation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — checkpointing strategy slowdown vs baseline (§IV-C rationale)\n")
	fmt.Fprintf(&b, "%-18s %12s %12s\n", "Benchmark", "Undo log", "Full copy")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-18s %12.3f %12.3f\n", r.Name, r.UndoLog, r.FullCopy)
	}
	fmt.Fprintf(&b, "%-18s %12.3f %12.3f\n", "geomean", a.GeoUndoLog, a.GeoFullCopy)
	return b.String()
}
