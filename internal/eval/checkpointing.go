package eval

import (
	"fmt"
	"strings"

	"repro/internal/memlog"
	"repro/internal/seep"
	"repro/internal/unixbench"
)

// CheckpointingRow compares the two FullCopy checkpoint implementations
// on one benchmark: the legacy clone-everything path and the
// incremental dirty-set path.
type CheckpointingRow struct {
	Name                string
	Legacy, Incremental float64 // slowdown vs uninstrumented baseline
}

// Checkpointing quantifies what the incremental dirty-set snapshots buy
// over the legacy whole-data-section clone: the same FullCopy semantics
// at a fraction of the per-request cost, because checkpoints charge for
// delta bytes instead of resident state.
type Checkpointing struct {
	Rows                      []CheckpointingRow
	GeoLegacy, GeoIncremental float64
	// GeoSpeedup is GeoLegacy/GeoIncremental expressed on the overhead
	// portion of the slowdown: how much of the full-copy tax the
	// dirty-set optimisation removes.
	GeoSpeedup float64
}

// RunCheckpointing measures both FullCopy checkpoint implementations
// against the uninstrumented baseline under the enhanced policy.
func RunCheckpointing(sc Scale) Checkpointing {
	grouped := runBenchMatrix(sc.Workers,
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.Baseline,
			Seed: sc.Seed, IterScale: sc.IterScale,
		},
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.FullCopy,
			LegacyCheckpoint: true,
			Seed:             sc.Seed, IterScale: sc.IterScale,
		},
		unixbench.Config{
			Policy: seep.PolicyEnhanced, Instrumentation: memlog.FullCopy,
			Seed: sc.Seed, IterScale: sc.IterScale,
		})
	base, legacy, incr := grouped[0], grouped[1], grouped[2]

	var t Checkpointing
	var ll, li float64
	n := 0
	for i := range base {
		row := CheckpointingRow{Name: base[i].Name}
		if base[i].Score > 0 && legacy[i].Score > 0 && incr[i].Score > 0 {
			row.Legacy = base[i].Score / legacy[i].Score
			row.Incremental = base[i].Score / incr[i].Score
			ll += ln(row.Legacy)
			li += ln(row.Incremental)
			n++
		}
		t.Rows = append(t.Rows, row)
	}
	if n > 0 {
		t.GeoLegacy = exp(ll / float64(n))
		t.GeoIncremental = exp(li / float64(n))
		if t.GeoIncremental > 0 {
			t.GeoSpeedup = t.GeoLegacy / t.GeoIncremental
		}
	}
	return t
}

// Render formats the checkpointing comparison table.
func (t Checkpointing) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Checkpointing — legacy full-copy vs incremental dirty-set slowdown vs baseline\n")
	fmt.Fprintf(&b, "%-18s %12s %12s\n", "Benchmark", "Legacy", "Incremental")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s %12.3f %12.3f\n", r.Name, r.Legacy, r.Incremental)
	}
	fmt.Fprintf(&b, "%-18s %12.3f %12.3f\n", "geomean", t.GeoLegacy, t.GeoIncremental)
	fmt.Fprintf(&b, "geomean speedup of the full-copy tax: %.2fx\n", t.GeoSpeedup)
	return b.String()
}
