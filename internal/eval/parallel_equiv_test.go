package eval

import (
	"reflect"
	"testing"
)

// Every evaluation table must be bit-identical for any worker count:
// each simulated machine owns its clock and RNG, and results are
// reduced in job order, so the thread count can never leak into the
// numbers.

func TestTable5IdenticalAcrossWorkerCounts(t *testing.T) {
	sc := QuickScale()
	sc.Workers = 1
	serial := RunTable5(sc)
	for _, workers := range []int{2, 8} {
		sc.Workers = workers
		got := RunTable5(sc)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d Table5 diverged from serial:\n%+v\nvs\n%+v", workers, got, serial)
		}
	}
}

func TestIPCSweepIdenticalAcrossWorkerCounts(t *testing.T) {
	sc := QuickScale()
	sc.Workers = 1
	serial := RunIPCSweep(sc)
	for _, workers := range []int{2, 8} {
		sc.Workers = workers
		got := RunIPCSweep(sc)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d IPC sweep diverged from serial:\n%+v\nvs\n%+v", workers, got, serial)
		}
	}
}

func TestFigure3IdenticalAcrossWorkerCounts(t *testing.T) {
	sc := QuickScale()
	intervals := []uint64{3_200_000}
	sc.Workers = 1
	serial := RunFigure3(sc, intervals)
	for _, workers := range []int{2, 8} {
		sc.Workers = workers
		got := RunFigure3(sc, intervals)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d Figure3 diverged from serial:\n%+v\nvs\n%+v", workers, got, serial)
		}
	}
}
