package eval

import (
	"testing"

	"repro/internal/faultinject"
)

func TestTable1Shape(t *testing.T) {
	tab, err := RunTable1(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// Central claims of Table I: enhanced coverage is at least the
	// pessimistic coverage for every server, strictly better for DS
	// (early read-only SEEP), and the weighted means sit in a sensible
	// band with enhanced above pessimistic.
	for _, r := range tab.Rows {
		if r.Enhanced+0.5 < r.Pessimistic {
			t.Errorf("%s: enhanced %.1f%% below pessimistic %.1f%%", r.Server, r.Enhanced, r.Pessimistic)
		}
		if r.Server == "ds" && r.Enhanced < r.Pessimistic+15 {
			t.Errorf("ds gap too small: %.1f%% -> %.1f%%", r.Pessimistic, r.Enhanced)
		}
	}
	if tab.WeightedEnhanced <= tab.WeightedPessimistic {
		t.Errorf("weighted enhanced %.1f%% not above pessimistic %.1f%%",
			tab.WeightedEnhanced, tab.WeightedPessimistic)
	}
	if tab.WeightedEnhanced >= 99 {
		t.Errorf("weighted enhanced %.1f%% suspiciously close to 100%%", tab.WeightedEnhanced)
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := RunSurvivability(faultinject.FailStop, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
	byPolicy := make(map[string]faultinject.CampaignResult)
	for _, r := range tab.Rows {
		byPolicy[r.Policy.String()] = r
	}
	enh := byPolicy["enhanced"]
	pess := byPolicy["pessimistic"]
	stateless := byPolicy["stateless"]
	naive := byPolicy["naive"]

	// Window policies nearly eliminate uncontrolled crashes...
	if enh.Percent(faultinject.OutcomeCrash) > 15 {
		t.Errorf("enhanced crash %.1f%% too high", enh.Percent(faultinject.OutcomeCrash))
	}
	if pess.Percent(faultinject.OutcomeCrash) > 15 {
		t.Errorf("pessimistic crash %.1f%% too high", pess.Percent(faultinject.OutcomeCrash))
	}
	// ...while the baselines crash far more often.
	if stateless.Percent(faultinject.OutcomeCrash) < enh.Percent(faultinject.OutcomeCrash)+10 {
		t.Errorf("stateless crash %.1f%% not clearly above enhanced %.1f%%",
			stateless.Percent(faultinject.OutcomeCrash), enh.Percent(faultinject.OutcomeCrash))
	}
	// Baselines never perform controlled shutdowns.
	if stateless.Percent(faultinject.OutcomeShutdown) != 0 || naive.Percent(faultinject.OutcomeShutdown) != 0 {
		t.Error("baseline policies reported controlled shutdowns")
	}
	// Enhanced survivability (pass+fail) beats pessimistic.
	survE := enh.Percent(faultinject.OutcomePass) + enh.Percent(faultinject.OutcomeFail)
	survP := pess.Percent(faultinject.OutcomePass) + pess.Percent(faultinject.OutcomeFail)
	if survE < survP {
		t.Errorf("enhanced survivability %.1f%% below pessimistic %.1f%%", survE, survP)
	}
}

func TestTable4Shape(t *testing.T) {
	tab := RunTable4(QuickScale())
	t.Log("\n" + tab.Render())
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var dhry, syscall PerfRow
	for _, r := range tab.Rows {
		if r.Slowdown <= 0 {
			t.Errorf("%s has no slowdown (scores %v/%v)", r.Name, r.Monolithic, r.OSIRIS)
		}
		switch r.Name {
		case "dhry2reg":
			dhry = r
		case "syscall":
			syscall = r
		}
	}
	// The microkernel pays for IPC: syscall-heavy tests suffer most,
	// compute-bound tests are unaffected.
	if syscall.Slowdown < 2 {
		t.Errorf("syscall slowdown %.2f, want >= 2", syscall.Slowdown)
	}
	if dhry.Slowdown > 1.3 {
		t.Errorf("dhry2reg slowdown %.2f, want ~1", dhry.Slowdown)
	}
	if tab.GeomeanSlowdown < 1.3 {
		t.Errorf("geomean slowdown %.2f, want noticeably above 1", tab.GeomeanSlowdown)
	}
}

func TestTable5Shape(t *testing.T) {
	tab := RunTable5(QuickScale())
	t.Log("\n" + tab.Render())
	// The optimisation claim: the unoptimized build is clearly worse
	// than both optimized builds; compute benches are unaffected.
	if tab.GeoUnoptimized < tab.GeoEnhanced+0.02 {
		t.Errorf("unoptimized geomean %.3f not clearly above enhanced %.3f",
			tab.GeoUnoptimized, tab.GeoEnhanced)
	}
	if tab.GeoEnhanced > 1.15 {
		t.Errorf("enhanced geomean %.3f too high (paper ~1.05)", tab.GeoEnhanced)
	}
	if tab.GeoPessimistic > tab.GeoEnhanced+0.01 {
		t.Errorf("pessimistic %.3f should not exceed enhanced %.3f (shorter windows)",
			tab.GeoPessimistic, tab.GeoEnhanced)
	}
	for _, r := range tab.Rows {
		if r.Name == "dhry2reg" && r.Unoptimized > 1.05 {
			t.Errorf("dhry2reg unoptimized %.3f, want ~1 (no server time)", r.Unoptimized)
		}
	}
}

func TestTable6Shape(t *testing.T) {
	tab, err := RunTable6(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.Render())
	var vm MemoryRow
	for _, r := range tab.Rows {
		if r.Server == "vm" {
			vm = r
		}
		if r.Clone == 0 {
			t.Errorf("%s: clone bytes zero", r.Server)
		}
	}
	// VM dominates the memory overhead (frame table), as in the paper.
	if vm.Sum*2 < tab.Total {
		t.Errorf("vm overhead %d not dominant of total %d", vm.Sum, tab.Total)
	}
}

func TestFigure3Shape(t *testing.T) {
	sc := QuickScale()
	fig := RunFigure3(sc, []uint64{60_000, 3_200_000})
	t.Log("\n" + fig.Render())
	// PM-dependent benchmarks degrade under high-frequency faults;
	// compute benchmarks do not.
	spawn := fig.Series["spawn"]
	dhry := fig.Series["dhry2reg"]
	if len(spawn) != 3 || len(dhry) != 3 {
		t.Fatalf("series lengths: spawn %d dhry %d", len(spawn), len(dhry))
	}
	if spawn[1].Score <= 0 {
		t.Fatal("spawn did not survive fault inflow")
	}
	if spawn[1].Score >= spawn[0].Score*0.95 {
		t.Errorf("spawn under heavy inflow %.1f not below fault-free %.1f",
			spawn[1].Score, spawn[0].Score)
	}
	if dhry[1].Score < dhry[0].Score*0.9 {
		t.Errorf("dhry2reg degraded under PM faults: %.1f vs %.1f", dhry[1].Score, dhry[0].Score)
	}
	// Degradation shrinks as the interval grows.
	if spawn[2].Score < spawn[1].Score {
		t.Errorf("spawn at long interval %.1f below short interval %.1f", spawn[2].Score, spawn[1].Score)
	}
}

func TestAblationCheckpointing(t *testing.T) {
	a := RunAblationCheckpointing(QuickScale())
	t.Log("\n" + a.Render())
	// The paper's rationale: at per-request checkpoint frequency, the
	// undo log must beat full-state copies decisively.
	if a.GeoFullCopy < a.GeoUndoLog*1.05 {
		t.Errorf("full copy geomean %.3f not clearly above undo log %.3f",
			a.GeoFullCopy, a.GeoUndoLog)
	}
	// The gap must be driven by state-heavy components: the VM/VFS
	// paths (spawn, file I/O) pay for copying their large sections per
	// request. For PM's tiny state (syscall) full copy may even win —
	// the undo log's advantage is a function of state size, exactly the
	// trade-off §IV-C describes.
	for _, r := range a.Rows {
		if (r.Name == "spawn" || r.Name == "fstime") && r.FullCopy < r.UndoLog*1.2 {
			t.Errorf("%s: full copy %.3f not clearly above undo log %.3f", r.Name, r.FullCopy, r.UndoLog)
		}
	}
}

func TestCheckpointingIncremental(t *testing.T) {
	c := RunCheckpointing(QuickScale())
	t.Log("\n" + c.Render())
	// The dirty-set optimisation must remove a decisive share of the
	// full-copy tax: requests that touch little state stop paying for
	// the whole data section.
	if c.GeoIncremental >= c.GeoLegacy*0.8 {
		t.Errorf("incremental geomean %.3f not clearly below legacy %.3f",
			c.GeoIncremental, c.GeoLegacy)
	}
	// It can only remove overhead, never go below baseline.
	for _, r := range c.Rows {
		if r.Incremental > 0 && r.Incremental < 0.999 {
			t.Errorf("%s: incremental slowdown %.3f below baseline", r.Name, r.Incremental)
		}
		if r.Incremental > 0 && r.Legacy > 0 && r.Incremental > r.Legacy*1.01 {
			t.Errorf("%s: incremental %.3f slower than legacy %.3f", r.Name, r.Incremental, r.Legacy)
		}
	}
}

// TestMultiFaultTableShape: the cascade table runs all campaigns and
// the sequencer keeps uncontrolled crashes rare even with several
// faults per boot.
func TestMultiFaultTableShape(t *testing.T) {
	tab, err := RunMultiFault(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tab.Render())
	if len(tab.Rows) != len(multiFaultPolicies)*len(multiFaultCounts) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(multiFaultPolicies)*len(multiFaultCounts))
	}
	for _, r := range tab.Rows {
		if r.Runs == 0 {
			t.Fatalf("row %v/%d classified no runs", r.Policy, r.Faults)
		}
		total := 0
		for _, n := range r.Counts {
			total += n
		}
		if total != r.Runs {
			t.Fatalf("row %v/%d classified %d of %d runs", r.Policy, r.Faults, total, r.Runs)
		}
	}
}
