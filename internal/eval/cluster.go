package eval

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// ClusterRow is one cluster scenario's summary line.
type ClusterRow struct {
	Name      string
	Nodes     int
	Requests  int
	Succeeded int
	Degraded  int
	TimedOut  int
	Lost      int
	P50       sim.Cycles
	P99       sim.Cycles
	P999      sim.Cycles
	// GoodputMin is the smallest per-window success count — positive
	// means the cluster never went fully dark.
	GoodputMin int
	Retries    int
	Failovers  int
	Consistent bool
}

// ClusterEval compares cluster availability with and without a fault
// storm: a single machine, a healthy 3-node cluster, and the same
// 3-node cluster under a node crash plus flaky links on every node.
type ClusterEval struct {
	Rows []ClusterRow
}

// clusterStormFor builds the canonical evaluation storm: node 1 dies a
// third of the way through the expected run and every node's link runs
// 100 bp per fault class hotter than the background for the whole run.
func clusterStormFor(nodes int) cluster.Storm {
	st := cluster.Storm{
		Crashes:    []cluster.NodeCrash{{Node: 1 % nodes, At: 900_000, Downtime: 1_500_000}},
		FlakyExtra: kernel.IPCFaultConfig{DropBP: 100, DupBP: 100, DelayBP: 100, ReorderBP: 100, CorruptBP: 100},
	}
	for n := 0; n < nodes; n++ {
		st.Flaky = append(st.Flaky, cluster.NodeWindow{Node: n, From: 0, To: 1 << 40})
	}
	return st
}

// RunCluster executes the three cluster scenarios and tabulates them.
func RunCluster(sc Scale) (ClusterEval, error) {
	requests := int(2000 * sc.IterScale)
	if requests < 400 {
		requests = 400
	}
	base := cluster.Config{
		Seed:     sc.Seed,
		Workers:  sc.Workers,
		Requests: requests,
	}

	type scenario struct {
		name  string
		nodes int
		storm cluster.Storm
	}
	scenarios := []scenario{
		{name: "1-node baseline", nodes: 1},
		{name: "3-node baseline", nodes: 3},
		{name: "3-node fault storm", nodes: 3, storm: clusterStormFor(3)},
	}

	var t ClusterEval
	for _, s := range scenarios {
		cfg := base
		cfg.Nodes = s.nodes
		cfg.Storm = s.storm
		res, err := cluster.Run(cfg)
		if err != nil {
			return ClusterEval{}, fmt.Errorf("cluster %s: %w", s.name, err)
		}
		gmin := -1
		for _, g := range res.Goodput {
			if gmin < 0 || g < gmin {
				gmin = g
			}
		}
		if gmin < 0 {
			gmin = 0
		}
		t.Rows = append(t.Rows, ClusterRow{
			Name:       s.name,
			Nodes:      res.Nodes,
			Requests:   res.Requests,
			Succeeded:  res.Succeeded,
			Degraded:   res.Degraded,
			TimedOut:   res.TimedOut,
			Lost:       res.Lost,
			P50:        res.P50,
			P99:        res.P99,
			P999:       res.P999,
			GoodputMin: gmin,
			Retries:    res.Retries,
			Failovers:  res.Failovers,
			Consistent: res.Consistent,
		})
	}
	return t, nil
}

// Render formats the cluster availability table.
func (t ClusterEval) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster — availability and latency under fault storms (cycles)\n")
	fmt.Fprintf(&b, "%-20s %6s %6s %6s %6s %5s %10s %10s %10s %8s %7s %9s %6s\n",
		"Scenario", "Reqs", "OK", "Degr", "TOut", "Lost", "p50", "p99", "p999", "GoodMin", "Retry", "Failover", "Audit")
	for _, r := range t.Rows {
		audit := "FAIL"
		if r.Consistent {
			audit = "ok"
		}
		fmt.Fprintf(&b, "%-20s %6d %6d %6d %6d %5d %10d %10d %10d %8d %7d %9d %6s\n",
			r.Name, r.Requests, r.Succeeded, r.Degraded, r.TimedOut, r.Lost,
			uint64(r.P50), uint64(r.P99), uint64(r.P999),
			r.GoodputMin, r.Retries, r.Failovers, audit)
	}
	b.WriteString("Every request terminates explicitly (success, shed, or ETIMEDOUT); Lost is always 0.")
	return b.String()
}
