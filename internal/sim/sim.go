// Package sim provides the deterministic substrate for the OSIRIS
// simulation: a virtual cycle clock, a seeded pseudo-random number
// generator, and named counters.
//
// Nothing in this package spawns goroutines or reads wall-clock time;
// every run of the simulator is a pure function of its seed and inputs.
package sim

import (
	"fmt"
	"sort"
)

// Cycles is a quantity of virtual CPU cycles. All simulated costs —
// computation, IPC hops, undo-log appends — are expressed in cycles, and
// all performance results are derived from cycle counts.
type Cycles uint64

// Clock is the virtual cycle clock shared by an entire simulated machine.
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	now Cycles
}

// Now reports the current virtual time.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves the clock forward by n cycles.
func (c *Clock) Advance(n Cycles) { c.now += n }

// RNG is a deterministic xorshift64* pseudo-random number generator.
// It is deliberately not safe for concurrent use: the simulator runs
// one process at a time by construction.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced
// with a fixed non-zero constant because xorshift has a zero fixpoint.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0,
// matching math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent state. The parent advances by one step.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() | 1)
}

// Counters is a set of named uint64 counters used for simulation
// statistics (messages sent, stores logged, faults injected, ...).
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Add increments counter name by n, creating it if necessary.
func (c *Counters) Add(name string, n uint64) { c.m[name] += n }

// Get reports the current value of counter name (zero if never set).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for name := range c.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// String renders the counters deterministically, one per line.
func (c *Counters) String() string {
	var out string
	for _, name := range c.Names() {
		out += fmt.Sprintf("%s=%d\n", name, c.m[name])
	}
	return out
}
