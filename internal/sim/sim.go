// Package sim provides the deterministic substrate for the OSIRIS
// simulation: a virtual cycle clock, a seeded pseudo-random number
// generator, and named counters.
//
// Nothing in this package spawns goroutines or reads wall-clock time;
// every run of the simulator is a pure function of its seed and inputs.
package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Cycles is a quantity of virtual CPU cycles. All simulated costs —
// computation, IPC hops, undo-log appends — are expressed in cycles, and
// all performance results are derived from cycle counts.
type Cycles uint64

// Clock is the virtual cycle clock shared by an entire simulated machine.
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	now Cycles
}

// Now reports the current virtual time.
func (c *Clock) Now() Cycles { return c.now }

// Advance moves the clock forward by n cycles.
func (c *Clock) Advance(n Cycles) { c.now += n }

// RNG is a deterministic xorshift64* pseudo-random number generator.
// It is deliberately not safe for concurrent use: the simulator runs
// one process at a time by construction.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is replaced
// with a fixed non-zero constant because xorshift has a zero fixpoint.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// State returns the generator's internal state word. For a fixed seed
// the state is a bijection of the number of draws taken, so comparing
// two states is an exact "same draw count" test — the elision plane
// uses it to prove a run's suffix consumed no machine randomness.
func (r *RNG) State() uint64 { return r.state }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0,
// matching math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent state. The parent advances by one step.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() | 1)
}

// CounterID is the fixed slot index of a counter registered with
// RegisterCounter. Hot paths increment counters by ID — one array
// store — instead of a string-keyed map operation; the name is only
// consulted at Snapshot/Names/String time.
type CounterID int32

// counterRegistry is the process-wide name→slot table. Registration
// happens at package init time (each package registers the counters it
// owns as package-level vars), so the lock is uncontended at runtime;
// hot-path AddID never touches it.
var counterRegistry = struct {
	sync.RWMutex
	ids   map[string]CounterID
	names []string
}{ids: make(map[string]CounterID)}

// RegisterCounter allocates (or returns the existing) fixed slot for a
// counter name. Intended for package-level var initialization; it is
// safe for concurrent use.
func RegisterCounter(name string) CounterID {
	counterRegistry.Lock()
	defer counterRegistry.Unlock()
	if id, ok := counterRegistry.ids[name]; ok {
		return id
	}
	id := CounterID(len(counterRegistry.names))
	counterRegistry.ids[name] = id
	counterRegistry.names = append(counterRegistry.names, name)
	return id
}

// counterID resolves a name to its registered slot.
func counterID(name string) (CounterID, bool) {
	counterRegistry.RLock()
	id, ok := counterRegistry.ids[name]
	counterRegistry.RUnlock()
	return id, ok
}

// registeredCounterName returns the name of slot id.
func registeredCounterName(id CounterID) string {
	counterRegistry.RLock()
	defer counterRegistry.RUnlock()
	return counterRegistry.names[id]
}

// Counters is a set of named uint64 counters used for simulation
// statistics (messages sent, stores logged, faults injected, ...).
// Registered counters live in a fixed-slot array (the hot path);
// unregistered names — ad-hoc test counters — fall back to a map. Like
// the rest of the simulation substrate it is not safe for concurrent
// use; each simulated machine owns one instance.
type Counters struct {
	slots   []uint64
	touched []bool
	// extra holds counters whose names were never registered, created
	// lazily on first use.
	extra map[string]uint64
	// names caches the sorted list of touched counter names. It is
	// invalidated only when a counter is touched for the first time,
	// so repeated Names()/String() calls do not re-sort.
	names      []string
	namesValid bool
}

// NewCounters returns an empty counter set sized to the registered
// slots.
func NewCounters() *Counters {
	counterRegistry.RLock()
	n := len(counterRegistry.names)
	counterRegistry.RUnlock()
	return &Counters{
		slots:   make([]uint64, n),
		touched: make([]bool, n),
	}
}

// AddID increments the registered counter id by n. This is the hot
// path: an array store with no hashing or locking.
func (c *Counters) AddID(id CounterID, n uint64) {
	if int(id) >= len(c.slots) {
		c.growTo(int(id) + 1)
	}
	c.slots[id] += n
	if !c.touched[id] {
		c.touched[id] = true
		c.namesValid = false
	}
}

// GetID reports the current value of the registered counter id.
func (c *Counters) GetID(id CounterID) uint64 {
	if int(id) >= len(c.slots) {
		return 0
	}
	return c.slots[id]
}

// growTo extends the slot arrays for counters registered after this
// set was created (only possible when a package registers counters
// lazily instead of at init; kept for safety).
func (c *Counters) growTo(n int) {
	slots := make([]uint64, n)
	copy(slots, c.slots)
	c.slots = slots
	touched := make([]bool, n)
	copy(touched, c.touched)
	c.touched = touched
}

// Add increments counter name by n, creating it if necessary. This is
// the string-keyed compatibility layer: registered names route to
// their slot, unknown names to the fallback map.
func (c *Counters) Add(name string, n uint64) {
	if id, ok := counterID(name); ok {
		c.AddID(id, n)
		return
	}
	if c.extra == nil {
		c.extra = make(map[string]uint64)
	}
	if _, seen := c.extra[name]; !seen {
		c.namesValid = false
	}
	c.extra[name] += n
}

// Get reports the current value of counter name (zero if never set).
func (c *Counters) Get(name string) uint64 {
	if id, ok := counterID(name); ok {
		return c.GetID(id)
	}
	return c.extra[name]
}

// Names returns the counter names in sorted order. The list is cached
// and only recomputed after a counter is touched for the first time.
func (c *Counters) Names() []string {
	if !c.namesValid {
		names := make([]string, 0, len(c.extra)+len(c.slots))
		for id, t := range c.touched {
			if t {
				names = append(names, registeredCounterName(CounterID(id)))
			}
		}
		for name := range c.extra {
			names = append(names, name)
		}
		sort.Strings(names)
		c.names = names
		c.namesValid = true
	}
	return c.names
}

// Clone returns an independent deep copy of the counter set,
// preserving slot values, touched marks, fallback-map entries and the
// cached name list. Used when snapshotting a machine for warm forking.
func (c *Counters) Clone() *Counters {
	out := &Counters{
		slots:      append([]uint64(nil), c.slots...),
		touched:    append([]bool(nil), c.touched...),
		namesValid: c.namesValid,
	}
	if c.extra != nil {
		out.extra = make(map[string]uint64, len(c.extra))
		for k, v := range c.extra {
			out.extra[k] = v
		}
	}
	if c.names != nil {
		out.names = append([]string(nil), c.names...)
	}
	return out
}

// CopyFrom overwrites this counter set in place with a deep copy of
// src. In-place restore keeps every pointer other subsystems hold to
// this set (stores, kernels) valid across a warm-fork image apply.
func (c *Counters) CopyFrom(src *Counters) {
	c.slots = append(c.slots[:0], src.slots...)
	c.touched = append(c.touched[:0], src.touched...)
	if src.extra == nil {
		c.extra = nil
	} else {
		c.extra = make(map[string]uint64, len(src.extra))
		for k, v := range src.extra {
			c.extra[k] = v
		}
	}
	c.names = append(c.names[:0], src.names...)
	c.namesValid = src.namesValid
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.extra)+len(c.slots))
	for id, t := range c.touched {
		if t {
			out[registeredCounterName(CounterID(id))] = c.slots[id]
		}
	}
	for k, v := range c.extra {
		out[k] = v
	}
	return out
}

// String renders the counters deterministically, one per line.
func (c *Counters) String() string {
	var out strings.Builder
	for _, name := range c.Names() {
		fmt.Fprintf(&out, "%s=%d\n", name, c.Get(name))
	}
	return out.String()
}
