package sim

import (
	"reflect"
	"testing"
)

func TestRegisterCounterIdempotent(t *testing.T) {
	a := RegisterCounter("test.slot_a")
	b := RegisterCounter("test.slot_b")
	if a == b {
		t.Fatalf("distinct names share slot %d", a)
	}
	if again := RegisterCounter("test.slot_a"); again != a {
		t.Fatalf("re-registration moved the slot: %d != %d", again, a)
	}
}

func TestCountersSlotAndFallbackPaths(t *testing.T) {
	id := RegisterCounter("test.slotted")
	c := NewCounters()
	c.AddID(id, 3)
	c.Add("test.slotted", 2) // string compat layer routes to the slot
	if got := c.GetID(id); got != 5 {
		t.Fatalf("GetID = %d, want 5", got)
	}
	if got := c.Get("test.slotted"); got != 5 {
		t.Fatalf("Get = %d, want 5", got)
	}

	c.Add("test.adhoc", 7) // unregistered name: fallback map
	if got := c.Get("test.adhoc"); got != 7 {
		t.Fatalf("ad-hoc Get = %d, want 7", got)
	}

	snap := c.Snapshot()
	want := map[string]uint64{"test.slotted": 5, "test.adhoc": 7}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("Snapshot = %v, want %v", snap, want)
	}
	if got := c.String(); got != "test.adhoc=7\ntest.slotted=5\n" {
		t.Fatalf("String = %q", got)
	}
}

func TestCountersNamesCacheInvalidation(t *testing.T) {
	idA := RegisterCounter("test.cache_a")
	idB := RegisterCounter("test.cache_b")
	c := NewCounters()
	c.AddID(idB, 1)
	first := c.Names()
	if !reflect.DeepEqual(first, []string{"test.cache_b"}) {
		t.Fatalf("Names = %v", first)
	}
	// Re-touching an already-seen counter must not invalidate: the
	// cached slice is returned as-is.
	c.AddID(idB, 1)
	if again := c.Names(); &again[0] != &first[0] {
		t.Fatal("cache was rebuilt without a first-touch")
	}
	// First touch of a new counter (slot or ad-hoc) invalidates.
	c.AddID(idA, 1)
	c.Add("test.cache_extra", 1)
	if got := c.Names(); !reflect.DeepEqual(got, []string{"test.cache_a", "test.cache_b", "test.cache_extra"}) {
		t.Fatalf("Names after invalidation = %v", got)
	}
}

func TestCountersLateRegistrationGrows(t *testing.T) {
	c := NewCounters()
	id := RegisterCounter("test.late_registered")
	c.AddID(id, 4) // slot beyond the creation-time size: must grow
	if got := c.Get("test.late_registered"); got != 4 {
		t.Fatalf("late-registered Get = %d, want 4", got)
	}
}
