package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %d, want 0", c.Now())
	}
	c.Advance(10)
	c.Advance(5)
	if got := c.Now(); got != 15 {
		t.Fatalf("Now() = %d, want 15", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("step %d: same-seed streams diverge: %d != %d", i, x, y)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 outputs", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Fork()
	// The child stream must not simply mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream matched parent %d/100 outputs", same)
	}
}

func TestRNGUniformityProperty(t *testing.T) {
	// Property: Intn(n) over many draws hits every residue class.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		seen := make(map[int]bool)
		for i := 0; i < 400; i++ {
			seen[r.Intn(8)] = true
		}
		return len(seen) == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("ipc", 2)
	c.Add("ipc", 3)
	c.Add("stores", 1)
	if got := c.Get("ipc"); got != 5 {
		t.Fatalf("Get(ipc) = %d, want 5", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %d, want 0", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "ipc" || names[1] != "stores" {
		t.Fatalf("Names() = %v, want sorted [ipc stores]", names)
	}
	snap := c.Snapshot()
	snap["ipc"] = 0
	if c.Get("ipc") != 5 {
		t.Fatal("Snapshot is not a copy")
	}
	want := "ipc=5\nstores=1\n"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
