// Package audit implements the OSIRIS runtime consistency auditor: a
// set of cross-server invariant oracles evaluated after every completed
// recovery and at the end of a run. The paper's central claim is that
// recovery leaves the multiserver system in a state indistinguishable
// from one where the in-flight request never happened or fully
// completed (§III); the auditor makes that claim checkable at runtime
// instead of asserting it offline.
//
// Oracles:
//
//   - pm-vm-agreement: every running process in PM's table owns exactly
//     one VM address space, and every address space belongs to a
//     running process — no half-applied fork/spawn/exit transactions.
//   - vfs-owner: every open file descriptor belongs to a running
//     process or a server.
//   - ds-owner: every Data Store subscription belongs to a running
//     process or a server.
//   - undo-log: a component's undo log is empty whenever its recovery
//     window is closed (logs must not leak outside windows).
//   - ipc-conservation: the transport ledger balances — every
//     transmission was delivered, consumed by a fault, suppressed as a
//     duplicate, or is still held in the delay queue.
//   - quarantine-consistency: the recovery engine and the kernel agree
//     on which components are detached.
//
// A component that is mid-request (or a multithreaded server with jobs
// in flight) may legitimately disagree with its peers about the
// in-flight operation, so table-agreement oracles skip audits involving
// busy components; the disagreement is caught by a later pass once the
// transaction has either completed or been rolled back. Quarantined
// components are exempt: their service is gone by design and their
// frozen tables no longer participate in the system state.
//
// Violations are expected — and demonstrate the paper's point — under
// the stateless and naive baseline policies, which discard or keep
// half-applied state across restarts.
package audit

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Violation is one failed oracle.
type Violation struct {
	// Oracle names the invariant that failed.
	Oracle string
	// Detail describes the concrete disagreement.
	Detail string
	// At is the virtual time of the audit pass.
	At sim.Cycles
}

func (v Violation) String() string {
	return fmt.Sprintf("[t=%d] %s: %s", v.At, v.Oracle, v.Detail)
}

// Report is the result of one audit pass.
type Report struct {
	At         sim.Cycles
	Final      bool
	Violations []Violation
}

// Consistent reports whether the pass found no violations.
func (r Report) Consistent() bool { return len(r.Violations) == 0 }

// ComponentState is the audited view of one recoverable component.
// The Has* flags distinguish "no table of this kind" from "empty
// table".
type ComponentState struct {
	EP   kernel.Endpoint
	Name string
	// Busy marks a component mid-request (generic loop between Receive
	// and EndRequest, or a Looper with jobs in flight).
	Busy bool
	// QuarantinedCore / QuarantinedKernel report the detached flag as
	// seen by the recovery engine and by the kernel.
	QuarantinedCore   bool
	QuarantinedKernel bool
	// WindowOpen and LogLen feed the undo-log oracle.
	WindowOpen bool
	LogLen     int

	// Table contents, present when the component implements the
	// matching audit accessor.
	UserEPs     []int64
	SpaceOwners []int64
	FDOwners    []int64
	Subscribers []int64
	HasUsers    bool
	HasSpaces   bool
	HasFDs      bool
	HasSubs     bool
}

// Snapshot is the cross-server state picture one audit pass works on.
// It is plain data, so oracle behaviour is unit-testable against
// hand-built (deliberately broken) fixtures.
type Snapshot struct {
	At         sim.Cycles
	Components []ComponentState
	// IPC is the transport conservation ledger; nil when the
	// interposition plane is disabled.
	IPC *kernel.IPCStats
}

// userTable, spaceTable, fdTable and subTable are the audit accessors a
// component can implement to participate in table-agreement oracles.
// They are declared here (not in the servers) so servers do not import
// the auditor.
type userTable interface{ AuditUserEndpoints() []int64 }
type spaceTable interface{ AuditSpaceOwners() []int64 }
type fdTable interface{ AuditFDOwners() []int64 }
type subTable interface{ AuditSubscribers() []int64 }

// Capture builds a Snapshot of the booted machine.
func Capture(os *core.OS) Snapshot {
	k := os.Kernel()
	snap := Snapshot{At: k.Now()}
	if st, ok := k.IPCStats(); ok {
		snap.IPC = &st
	}
	for _, ep := range os.ComponentOrder() {
		cs := ComponentState{
			EP:                ep,
			Busy:              os.ComponentBusy(ep),
			QuarantinedCore:   os.Quarantined(ep),
			QuarantinedKernel: k.IsQuarantined(ep),
		}
		if names := os.ComponentNames(); names != nil {
			cs.Name = names[ep]
		}
		if w := os.ComponentWindow(ep); w != nil {
			cs.WindowOpen = w.Open()
		}
		if st := os.ComponentStore(ep); st != nil {
			cs.LogLen = st.LogLen()
		}
		comp := os.ComponentInstance(ep)
		if t, ok := comp.(userTable); ok {
			cs.UserEPs = t.AuditUserEndpoints()
			cs.HasUsers = true
		}
		if t, ok := comp.(spaceTable); ok {
			cs.SpaceOwners = t.AuditSpaceOwners()
			cs.HasSpaces = true
		}
		if t, ok := comp.(fdTable); ok {
			cs.FDOwners = t.AuditFDOwners()
			cs.HasFDs = true
		}
		if t, ok := comp.(subTable); ok {
			cs.Subscribers = t.AuditSubscribers()
			cs.HasSubs = true
		}
		snap.Components = append(snap.Components, cs)
	}
	return snap
}

// Check evaluates every oracle against the snapshot.
func Check(s Snapshot) []Violation {
	var out []Violation
	out = append(out, checkPMVMAgreement(s)...)
	out = append(out, checkOwners(s)...)
	out = append(out, checkUndoLogs(s)...)
	out = append(out, checkIPCConservation(s)...)
	out = append(out, checkQuarantine(s)...)
	return out
}

// find returns the first component exposing the wanted table.
func find(s Snapshot, want func(ComponentState) bool) *ComponentState {
	for i := range s.Components {
		if want(s.Components[i]) {
			return &s.Components[i]
		}
	}
	return nil
}

// usable reports whether a component's tables may participate in an
// agreement oracle right now.
func usable(c *ComponentState) bool {
	return c != nil && !c.Busy && !c.QuarantinedCore && !c.QuarantinedKernel
}

// checkPMVMAgreement cross-checks the process table against the address
// spaces, in both directions.
func checkPMVMAgreement(s Snapshot) []Violation {
	pm := find(s, func(c ComponentState) bool { return c.HasUsers })
	vm := find(s, func(c ComponentState) bool { return c.HasSpaces })
	if !usable(pm) || !usable(vm) {
		return nil
	}
	var out []Violation
	spaces := toSet(vm.SpaceOwners)
	procs := toSet(pm.UserEPs)
	for _, ep := range pm.UserEPs {
		if !spaces[ep] {
			out = append(out, Violation{
				Oracle: "pm-vm-agreement", At: s.At,
				Detail: fmt.Sprintf("process at endpoint %d is running in PM but owns no VM address space", ep),
			})
		}
	}
	for _, ep := range vm.SpaceOwners {
		if !procs[ep] {
			out = append(out, Violation{
				Oracle: "pm-vm-agreement", At: s.At,
				Detail: fmt.Sprintf("VM address space owned by endpoint %d has no running process in PM", ep),
			})
		}
	}
	return out
}

// checkOwners verifies that file descriptors and DS subscriptions
// belong to running processes (or to servers, which live below
// EpUserBase and are not tracked by PM).
func checkOwners(s Snapshot) []Violation {
	pm := find(s, func(c ComponentState) bool { return c.HasUsers })
	if !usable(pm) {
		return nil
	}
	procs := toSet(pm.UserEPs)
	var out []Violation
	if vfs := find(s, func(c ComponentState) bool { return c.HasFDs }); usable(vfs) {
		for _, ep := range vfs.FDOwners {
			if ep >= int64(kernel.EpUserBase) && !procs[ep] {
				out = append(out, Violation{
					Oracle: "vfs-owner", At: s.At,
					Detail: fmt.Sprintf("open file descriptor owned by endpoint %d, which is not a running process", ep),
				})
			}
		}
	}
	if ds := find(s, func(c ComponentState) bool { return c.HasSubs }); usable(ds) {
		for _, ep := range ds.Subscribers {
			if ep >= int64(kernel.EpUserBase) && !procs[ep] {
				out = append(out, Violation{
					Oracle: "ds-owner", At: s.At,
					Detail: fmt.Sprintf("DS subscription owned by endpoint %d, which is not a running process", ep),
				})
			}
		}
	}
	return out
}

// checkUndoLogs verifies that no component carries undo-log records
// while its recovery window is closed.
func checkUndoLogs(s Snapshot) []Violation {
	var out []Violation
	for i := range s.Components {
		c := &s.Components[i]
		if c.QuarantinedCore || c.QuarantinedKernel {
			continue
		}
		if c.LogLen > 0 && !c.WindowOpen {
			out = append(out, Violation{
				Oracle: "undo-log", At: s.At,
				Detail: fmt.Sprintf("component %s holds %d undo-log records outside a recovery window", c.Name, c.LogLen),
			})
		}
	}
	return out
}

// checkIPCConservation verifies the transport ledger: every
// transmission must be delivered, consumed by a fault, suppressed as a
// duplicate, or still pending in the delay queue.
func checkIPCConservation(s Snapshot) []Violation {
	st := s.IPC
	if st == nil {
		return nil
	}
	accounted := st.Delivered + st.Dropped + st.DupSuppressed + st.PendingDelayed
	if st.Sent != accounted {
		return []Violation{{
			Oracle: "ipc-conservation", At: s.At,
			Detail: fmt.Sprintf("sent=%d but delivered=%d + dropped=%d + dup-suppressed=%d + pending=%d = %d",
				st.Sent, st.Delivered, st.Dropped, st.DupSuppressed, st.PendingDelayed, accounted),
		}}
	}
	return nil
}

// checkQuarantine verifies that the recovery engine and the kernel
// agree on which components are detached.
func checkQuarantine(s Snapshot) []Violation {
	var out []Violation
	for i := range s.Components {
		c := &s.Components[i]
		if c.QuarantinedCore != c.QuarantinedKernel {
			out = append(out, Violation{
				Oracle: "quarantine-consistency", At: s.At,
				Detail: fmt.Sprintf("component %s: engine quarantined=%v but kernel quarantined=%v",
					c.Name, c.QuarantinedCore, c.QuarantinedKernel),
			})
		}
	}
	return out
}

func toSet(eps []int64) map[int64]bool {
	set := make(map[int64]bool, len(eps))
	for _, ep := range eps {
		set[ep] = true
	}
	return set
}

// Auditor accumulates audit passes over one run. Attach it before
// os.Run; it checks after every completed recovery, and Final runs the
// end-of-run pass.
type Auditor struct {
	os      *core.OS
	reports []Report
}

// Attach creates an auditor and hooks it into the recovery engine.
func Attach(os *core.OS) *Auditor {
	a := &Auditor{os: os}
	os.SetAuditHook(func() { a.check(false) })
	return a
}

// check runs one audit pass and records its report.
func (a *Auditor) check(final bool) Report {
	snap := Capture(a.os)
	rep := Report{At: snap.At, Final: final, Violations: Check(snap)}
	a.reports = append(a.reports, rep)
	return rep
}

// Final runs the end-of-run audit pass. Call it after os.Run returns;
// component tables, stores and windows remain accessible after the
// machine stops.
func (a *Auditor) Final() Report { return a.check(true) }

// Reports returns every recorded audit pass in order.
func (a *Auditor) Reports() []Report { return a.reports }

// Consistent reports whether no pass recorded a violation.
func (a *Auditor) Consistent() bool {
	for _, r := range a.reports {
		if !r.Consistent() {
			return false
		}
	}
	return true
}

// Violations returns all recorded violations in pass order.
func (a *Auditor) Violations() []Violation {
	var out []Violation
	for _, r := range a.reports {
		out = append(out, r.Violations...)
	}
	return out
}
