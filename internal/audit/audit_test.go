package audit_test

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/memlog"
	"repro/internal/seep"
	"repro/internal/sim"
	"repro/internal/testsuite"
	"repro/internal/usr"
)

// cleanSnapshot is a well-formed machine picture: every broken fixture
// below is this snapshot with exactly one invariant deliberately
// violated, so a test that passes on the broken fixture but also passes
// on the clean one would be vacuous — TestCleanSnapshotConsistent
// guards against that.
func cleanSnapshot() audit.Snapshot {
	user := int64(kernel.EpUserBase)
	return audit.Snapshot{
		At: 1000,
		Components: []audit.ComponentState{
			{EP: kernel.EpPM, Name: "pm", UserEPs: []int64{user, user + 1}, HasUsers: true},
			{EP: kernel.EpVM, Name: "vm", SpaceOwners: []int64{user, user + 1}, HasSpaces: true},
			{EP: kernel.EpVFS, Name: "vfs", FDOwners: []int64{user, int64(kernel.EpDriver)}, HasFDs: true},
			{EP: kernel.EpDS, Name: "ds", Subscribers: []int64{user + 1}, HasSubs: true},
		},
		IPC: &kernel.IPCStats{Sent: 10, Delivered: 7, Dropped: 1, DupSuppressed: 1, PendingDelayed: 1},
	}
}

func violations(t *testing.T, s audit.Snapshot, oracle string) []audit.Violation {
	t.Helper()
	var hit []audit.Violation
	for _, v := range audit.Check(s) {
		if v.Oracle != oracle {
			t.Fatalf("unexpected %s violation: %s", v.Oracle, v)
		}
		hit = append(hit, v)
	}
	return hit
}

func TestCleanSnapshotConsistent(t *testing.T) {
	if vs := audit.Check(cleanSnapshot()); len(vs) != 0 {
		t.Fatalf("clean snapshot produced violations: %v", vs)
	}
}

func TestOraclePMVMAgreementBroken(t *testing.T) {
	// A process with no address space: half-applied fork seen from PM.
	s := cleanSnapshot()
	s.Components[0].UserEPs = append(s.Components[0].UserEPs, 105)
	if got := violations(t, s, "pm-vm-agreement"); len(got) != 1 {
		t.Fatalf("orphan process: violations = %v", got)
	}

	// An address space with no process: half-applied fork seen from VM.
	s = cleanSnapshot()
	s.Components[1].SpaceOwners = append(s.Components[1].SpaceOwners, 106)
	if got := violations(t, s, "pm-vm-agreement"); len(got) != 1 {
		t.Fatalf("orphan space: violations = %v", got)
	}

	// The same disagreement is exempt while either table owner is busy
	// (the transaction may still be in flight) or quarantined.
	s.Components[0].Busy = true
	if got := audit.Check(s); len(got) != 0 {
		t.Fatalf("busy PM not exempt: %v", got)
	}
	s.Components[0].Busy = false
	s.Components[1].QuarantinedCore = true
	s.Components[1].QuarantinedKernel = true
	if got := audit.Check(s); len(got) != 0 {
		t.Fatalf("quarantined VM not exempt: %v", got)
	}
}

func TestOracleVFSOwnerBroken(t *testing.T) {
	// An fd owned by a user endpoint PM does not list: leaked descriptor.
	s := cleanSnapshot()
	s.Components[2].FDOwners = append(s.Components[2].FDOwners, 107)
	if got := violations(t, s, "vfs-owner"); len(got) != 1 {
		t.Fatalf("leaked fd: violations = %v", got)
	}
	// Server-owned descriptors (below EpUserBase) are always legal.
	s = cleanSnapshot()
	s.Components[2].FDOwners = append(s.Components[2].FDOwners, int64(kernel.EpRS))
	if got := audit.Check(s); len(got) != 0 {
		t.Fatalf("server fd flagged: %v", got)
	}
}

func TestOracleDSOwnerBroken(t *testing.T) {
	s := cleanSnapshot()
	s.Components[3].Subscribers = append(s.Components[3].Subscribers, 108)
	if got := violations(t, s, "ds-owner"); len(got) != 1 {
		t.Fatalf("leaked subscription: violations = %v", got)
	}
}

func TestOracleUndoLogBroken(t *testing.T) {
	s := cleanSnapshot()
	s.Components[3].LogLen = 4 // window closed: records leaked
	if got := violations(t, s, "undo-log"); len(got) != 1 {
		t.Fatalf("leaked log: violations = %v", got)
	}
	s.Components[3].WindowOpen = true // open window: logging is normal
	if got := audit.Check(s); len(got) != 0 {
		t.Fatalf("open-window log flagged: %v", got)
	}
}

func TestOracleIPCConservationBroken(t *testing.T) {
	s := cleanSnapshot()
	s.IPC.Delivered-- // one transmission vanished from the ledger
	if got := violations(t, s, "ipc-conservation"); len(got) != 1 {
		t.Fatalf("unbalanced ledger: violations = %v", got)
	}
	s.IPC = nil // plane disabled: oracle is skipped, not vacuously true
	if got := audit.Check(s); len(got) != 0 {
		t.Fatalf("nil ledger flagged: %v", got)
	}
}

func TestOracleQuarantineBroken(t *testing.T) {
	s := cleanSnapshot()
	s.Components[1].QuarantinedKernel = true // engine disagrees
	if got := violations(t, s, "quarantine-consistency"); len(got) != 1 {
		t.Fatalf("split quarantine: violations = %v", got)
	}
}

// crashOnce is a minimal recoverable component that fail-stops on its
// n-th request, for exercising the post-recovery audit hook.
type crashOnce struct {
	calls   *memlog.Cell[int64]
	crashOn int64
	seen    *int64
}

func (c *crashOnce) Name() string { return "crashonce" }

func (c *crashOnce) Handle(ctx *kernel.Context, m kernel.Message) {
	ctx.Point("crashonce.handle")
	c.calls.Set(c.calls.Get() + 1)
	*c.seen++
	if c.crashOn > 0 && *c.seen == c.crashOn {
		ctx.Crash("audit test: planned crash on call %d", c.crashOn)
	}
	ctx.Reply(m.From, kernel.Message{A: c.calls.Get()})
}

const echoEP = kernel.EpDS

func TestAuditorRunsAfterRecovery(t *testing.T) {
	o := core.NewOS(core.Config{Policy: seep.PolicyEnhanced, Seed: 1})
	var seen int64
	o.AddComponent(echoEP, func(st *memlog.Store) core.Component {
		return &crashOnce{calls: memlog.NewCell(st, "c.calls", int64(0)), crashOn: 2, seen: &seen}
	})
	o.SpawnInit("client", func(ctx *kernel.Context) {
		for i := 0; i < 4; i++ {
			ctx.SendRec(echoEP, kernel.Message{Type: 300})
		}
	})
	aud := audit.Attach(o)
	res := o.Run(1_000_000_000)
	if res.Outcome != kernel.OutcomeCompleted {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Reason)
	}
	if o.Recoveries != 1 {
		t.Fatalf("recoveries = %d", o.Recoveries)
	}
	final := aud.Final()
	reports := aud.Reports()
	// One pass after the completed recovery, plus the final pass.
	if len(reports) != 2 || reports[0].Final || !reports[1].Final {
		t.Fatalf("reports = %+v", reports)
	}
	if !aud.Consistent() || !final.Consistent() {
		t.Fatalf("violations: %v", aud.Violations())
	}
}

func TestAuditorSurvivesIPCFaults(t *testing.T) {
	// Every request must complete despite drops, duplicates, delays and
	// corruption, and the final audit must balance the transport ledger.
	o := core.NewOS(core.Config{
		Policy: seep.PolicyEnhanced,
		Seed:   7,
		IPCFaults: kernel.IPCFaultConfig{
			DropBP: 300, DupBP: 200, DelayBP: 200, CorruptBP: 200,
		},
		IPCFaultSeed:     99,
		IPCTimeoutCycles: core.DefaultIPCTimeoutCycles,
		IPCRetryMax:      4,
	})
	o.AddComponent(echoEP, func(st *memlog.Store) core.Component {
		var seen int64
		return &crashOnce{calls: memlog.NewCell(st, "c.calls", int64(0)), seen: &seen}
	})
	var bad []kernel.Errno
	o.SpawnInit("client", func(ctx *kernel.Context) {
		for i := 0; i < 50; i++ {
			if r := ctx.SendRec(echoEP, kernel.Message{Type: 300, A: int64(i)}); r.Errno != kernel.OK {
				bad = append(bad, r.Errno)
			}
		}
	})
	aud := audit.Attach(o)
	res := o.Run(4_000_000_000)
	if res.Outcome != kernel.OutcomeCompleted {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Reason)
	}
	if len(bad) != 0 {
		t.Fatalf("requests failed under IPC faults: %v", bad)
	}
	st, ok := o.Kernel().IPCStats()
	if !ok {
		t.Fatal("IPC plane not enabled")
	}
	if st.Dropped == 0 && st.Duplicated == 0 && st.Delayed == 0 && st.CorruptInjected == 0 {
		t.Fatalf("no faults fired; stats = %+v", st)
	}
	if rep := aud.Final(); !rep.Consistent() {
		t.Fatalf("final audit inconsistent: %v", rep.Violations)
	}
}

func TestAuditorFullSystemCleanRun(t *testing.T) {
	reg := usr.NewRegistry()
	testsuite.Register(reg)
	var report testsuite.Report
	sys := boot.Boot(boot.Options{
		Config:     core.Config{Policy: seep.PolicyEnhanced, Seed: 42},
		Registry:   reg,
		Heartbeats: true,
	}, testsuite.RunnerInit(&report))
	aud := audit.Attach(sys.OS)
	res := sys.Run(sim.Cycles(4_000_000_000))
	if res.Outcome != kernel.OutcomeCompleted {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Reason)
	}
	if !report.Complete() || report.Failed != 0 {
		t.Fatalf("suite: complete=%v failed=%d", report.Complete(), report.Failed)
	}
	if rep := aud.Final(); !rep.Consistent() {
		t.Fatalf("final audit inconsistent: %v", rep.Violations)
	}
}
