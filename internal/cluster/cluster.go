// Package cluster composes N independent simulated OSIRIS machines
// into one deterministic virtual-time cluster: a seeded inter-node
// network (reusing the kernel fault-plane fates as the loss/duplication
// /delay/reorder/corruption model), a stateless load-balancer front end
// that derives per-node health from each machine's Recovery Server
// (rs.Health), and an open-loop workload generator standing in for
// thousands of concurrent clients.
//
// The composition is lockstep co-simulation: every node is stepped to a
// common virtual-time boundary (kernel.StepUntil), then cross-node
// events — request deliveries, replies, health polls, retry and
// deadline timers, storm transitions — are processed single-threaded in
// deterministic (time, sequence) order. Node stepping fans out over a
// parallel.Map worker pool; nodes share no mutable state mid-slice, so
// the aggregate result is bit-identical for every worker count.
// Cross-node causality skew is bounded by one quantum and is itself
// deterministic, so it is part of the model, not noise.
//
// The robustness ladder implemented by the balancer, bottom to top:
// per-request deadlines; capped-backoff retries that re-dispatch away
// from the failing node; failover of every in-flight request when a
// node is marked unhealthy (health-poll misses, a breaker tripping on
// consecutive failures, or RS reporting an in-node quarantine); and
// explicit brown-out degradation — shedding the lowest priority
// classes — when healthy capacity drops below offered demand. Every
// request terminates in exactly one of success, degraded (shed) or
// explicit timeout: nothing is silently lost.
//
// The data plane is deliberately per-node (no replication): the cluster
// layer targets availability and bounded latency, mirroring how the
// paper's per-machine recovery slots under a fleet-level front end.
package cluster

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/seep"
	"repro/internal/servers/rs"
	"repro/internal/sim"
	"repro/internal/usr"
)

// Config parameterizes a cluster run. Zero values select defaults.
type Config struct {
	// Nodes is the number of machines (default 3).
	Nodes int
	// Seed drives every random stream of the run (default 1).
	Seed uint64
	// Workers bounds the per-node stepping fan-out; results are
	// bit-identical for any value (0 = one per CPU, 1 = serial).
	Workers int
	// Policy is the per-node recovery policy (0 = PolicyEnhanced).
	Policy seep.Policy

	// Requests is the total client-request count (default 2000).
	Requests int
	// Clients is the simulated client population the open-loop arrival
	// process stands in for (default 1000; bookkeeping only — open-loop
	// arrivals do not block on earlier responses).
	Clients int
	// MeanGap is the mean request interarrival in cycles (default 6000).
	MeanGap sim.Cycles

	// Deadline is the per-request end-to-end budget (default 4,000,000).
	Deadline sim.Cycles
	// RetryBase/RetryCap bound the exponential retry backoff
	// (defaults 150,000 and 1,200,000); RetryMax caps attempts
	// (default 5).
	RetryBase sim.Cycles
	RetryCap  sim.Cycles
	RetryMax  int

	// Quantum is the lockstep slice length (default 100,000).
	Quantum sim.Cycles

	// Net holds the background network fault rates in basis points per
	// transmission (kernel fault-plane fates); zero = a perfect network.
	Net kernel.IPCFaultConfig
	// NetDelay/NetJitter shape one-way latency: base plus uniform
	// jitter (defaults 4,000 and 2,000).
	NetDelay  sim.Cycles
	NetJitter sim.Cycles

	// Storm is the node-level fault schedule (crashes, partitions,
	// flaky-link windows, in-node component fail-stops).
	Storm Storm

	// HealthEvery is the balancer's health-poll period (default
	// 150,000); HealthMisses consecutive unreachable polls mark a node
	// unhealthy (default 3); BreakerFails consecutive request failures
	// trip the per-node breaker (default 8); BreakerHold is how long an
	// unhealthy node is held out before a successful poll may readmit
	// it (default 2×HealthEvery).
	HealthEvery  sim.Cycles
	HealthMisses int
	BreakerFails int
	BreakerHold  sim.Cycles

	// NodeCapacity estimates requests-per-megacycle one healthy node
	// sustains; the brown-out ladder sheds priority classes when
	// healthy capacity falls below offered demand (default 100).
	NodeCapacity int

	// RebootDowntime is how long an unscheduled node death stays down
	// before the reboot (default 2,000,000).
	RebootDowntime sim.Cycles
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Policy == 0 {
		c.Policy = seep.PolicyEnhanced
	}
	if c.Requests == 0 {
		c.Requests = 2000
	}
	if c.Clients == 0 {
		c.Clients = 1000
	}
	if c.MeanGap == 0 {
		c.MeanGap = 6000
	}
	if c.Deadline == 0 {
		c.Deadline = 4_000_000
	}
	if c.RetryBase == 0 {
		c.RetryBase = 150_000
	}
	if c.RetryCap == 0 {
		c.RetryCap = 1_200_000
	}
	if c.RetryMax == 0 {
		c.RetryMax = 5
	}
	if c.Quantum == 0 {
		c.Quantum = 100_000
	}
	if c.NetDelay == 0 {
		c.NetDelay = 4_000
	}
	if c.NetJitter == 0 {
		c.NetJitter = 2_000
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 150_000
	}
	if c.HealthMisses == 0 {
		c.HealthMisses = 3
	}
	if c.BreakerFails == 0 {
		c.BreakerFails = 8
	}
	if c.BreakerHold == 0 {
		c.BreakerHold = 2 * c.HealthEvery
	}
	if c.NodeCapacity == 0 {
		c.NodeCapacity = 100
	}
	if c.RebootDowntime == 0 {
		c.RebootDowntime = 2_000_000
	}
	if c.Nodes < 1 {
		return c, fmt.Errorf("cluster: Nodes must be >= 1, got %d", c.Nodes)
	}
	if err := c.Net.Validate(); err != nil {
		return c, fmt.Errorf("cluster: %w", err)
	}
	if err := c.Storm.validate(c.Nodes); err != nil {
		return c, err
	}
	// The run marks crash/fault entries as applied; work on private
	// copies so the caller's schedule stays reusable.
	c.Storm.Crashes = append([]NodeCrash(nil), c.Storm.Crashes...)
	for i := range c.Storm.Crashes {
		c.Storm.Crashes[i].applied = false
	}
	c.Storm.CompFaults = append([]CompFault(nil), c.Storm.CompFaults...)
	for i := range c.Storm.CompFaults {
		c.Storm.CompFaults[i].applied = false
	}
	return c, nil
}

// node is one machine plus the balancer's bookkeeping about it.
type node struct {
	idx     int
	sys     *boot.System
	aud     *audit.Auditor
	agentEP kernel.Endpoint
	up      bool

	// completions is filled by the node agent while the machine steps
	// and drained by the driver between slices (baton handoff gives the
	// happens-before edge).
	completions []completion

	// Balancer view.
	lbHealthy   bool
	missPolls   int
	consecFails int
	holdUntil   sim.Cycles

	// Lifetime statistics, folded across incarnations.
	boots          int
	crashes        int
	served         int
	unhealthyMarks int
	recoveries     int64
	quarantines    int64
	hangKills      int64
}

// completion is one finished request attempt reported by a node agent.
type completion struct {
	reqID   int
	attempt int
	errno   kernel.Errno
	at      sim.Cycles
}

// Cluster is the run state. Everything outside node stepping executes
// on the driver goroutine.
type Cluster struct {
	cfg     Config
	nodes   []*node
	net     *netModel
	events  eventHeap
	evSeq   uint64
	reqs    []*request
	horizon sim.Cycles

	unresolved  int
	lastArrival sim.Cycles
	rr          int
	shedBelow   int

	m metrics

	auditChecks int
	auditOK     bool
	violations  []string
	transitions []string
}

// clusterRSHealth is what the balancer needs from a node's RS; the
// boot-time RS component satisfies it via embedding.
type clusterRSHealth interface{ Health() rs.Health }

// Run executes one full cluster simulation and returns its metrics.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	c := &Cluster{cfg: cfg, auditOK: true, shedBelow: 0}
	c.net = newNetModel(cfg)
	c.genArrivals()
	c.horizon = c.lastArrival + cfg.Deadline + 8*cfg.Quantum
	c.push(event{due: cfg.HealthEvery, kind: evPoll})
	for i := 0; i < cfg.Nodes; i++ {
		n := &node{idx: i, lbHealthy: true}
		c.nodes = append(c.nodes, n)
		c.bootNode(n, 0)
	}
	c.recomputeBrownout(0)

	for t := sim.Cycles(0); c.unresolved > 0; {
		t += cfg.Quantum
		c.stormTick(t)
		c.pumpEvents(t)
		c.stepNodes(t)
		if t >= c.horizon {
			c.timeoutRemaining(t)
			break
		}
	}
	c.finalize()
	return c.result(), nil
}

// bootNode boots (or reboots) node n with its machine clock aligned to
// cluster time at.
func (c *Cluster) bootNode(n *node, at sim.Cycles) {
	n.boots++
	seed := c.cfg.Seed ^
		(0x9E3779B97F4A7C15 * uint64(n.idx+1)) ^
		(0xBF58476D1CE4E5B9 * uint64(n.boots))
	sys := boot.Boot(boot.Options{
		Config: core.Config{
			Policy: c.cfg.Policy,
			Seed:   seed,
		},
		Registry:   usr.NewRegistry(),
		Heartbeats: true,
	}, c.agentProgram(n))
	n.sys = sys
	n.aud = audit.Attach(sys.OS)
	n.agentEP = sys.InitEP()
	k := sys.Kernel()
	k.BeginSteps(c.horizon*2 + 1_000_000)
	if at > 0 {
		k.Clock().Advance(at)
	}
	n.up = true
	n.missPolls = 0
	n.consecFails = 0
	if at == 0 {
		c.transition(at, n.idx, "boot")
	} else {
		// A rebooted node must prove itself with a successful health
		// poll before taking traffic again.
		n.lbHealthy = false
		n.holdUntil = at
		c.transition(at, n.idx, "reboot")
	}
}

// crashNode folds the dying incarnation's audit verdicts and RS
// statistics, tears the machine down, and schedules the reboot.
func (c *Cluster) crashNode(n *node, at sim.Cycles, downtime sim.Cycles, why string) {
	c.foldNodeStats(n)
	n.sys.Shutdown("cluster: " + why)
	n.up = false
	n.crashes++
	c.transition(at, n.idx, "crash: "+why)
	c.push(event{due: at + downtime, kind: evReboot, node: n.idx})
}

// foldNodeStats accumulates the current incarnation's RS accounting
// and audit verdicts into the node's lifetime statistics.
func (c *Cluster) foldNodeStats(n *node) {
	if hp, ok := n.sys.ComponentInstance(kernel.EpRS).(clusterRSHealth); ok {
		h := hp.Health()
		n.recoveries += h.Recoveries
		n.quarantines += h.Quarantines
		n.hangKills += h.HangKills
	}
	c.auditChecks += len(n.aud.Reports())
	if !n.aud.Consistent() {
		c.auditOK = false
		for _, v := range n.aud.Violations() {
			c.violations = append(c.violations, fmt.Sprintf("node%d: %s", n.idx, v.String()))
		}
	}
}

// rsHealth reads node n's Recovery Server snapshot (between steps the
// machine is parked, so this is a plain read).
func (n *node) rsHealth() (rs.Health, bool) {
	if hp, ok := n.sys.ComponentInstance(kernel.EpRS).(clusterRSHealth); ok {
		return hp.Health(), true
	}
	return rs.Health{}, false
}

// stormTick applies every scheduled node-level fault transition due at
// or before boundary t, in deterministic schedule order.
func (c *Cluster) stormTick(t sim.Cycles) {
	for i := range c.cfg.Storm.Crashes {
		ev := &c.cfg.Storm.Crashes[i]
		if ev.applied || ev.At > t {
			continue
		}
		ev.applied = true
		n := c.nodes[ev.Node]
		if n.up {
			c.crashNode(n, ev.At, ev.Downtime, "storm: node crash")
		}
	}
	for i := range c.cfg.Storm.CompFaults {
		ev := &c.cfg.Storm.CompFaults[i]
		if ev.applied || ev.At > t {
			continue
		}
		ev.applied = true
		n := c.nodes[ev.Node]
		if n.up {
			// Between slices no process is running, so a fail-stop is
			// legal here; the node's own recovery engine takes over.
			n.sys.Kernel().FailStopProcess(ev.EP, "cluster storm: injected component fault")
		}
	}
}

// stepOut carries one node's slice results back from the worker pool.
type stepOut struct {
	comps []completion
	died  bool
}

// stepNodes advances every live machine to boundary t in parallel and
// converts their completions into reply events, in node order.
func (c *Cluster) stepNodes(t sim.Cycles) {
	outs := parallel.Map(c.cfg.Workers, len(c.nodes), func(i int) stepOut {
		n := c.nodes[i]
		if !n.up {
			return stepOut{}
		}
		n.completions = n.completions[:0]
		died := n.sys.Kernel().StepUntil(t)
		comps := make([]completion, len(n.completions))
		copy(comps, n.completions)
		return stepOut{comps: comps, died: died}
	})
	for i, out := range outs {
		n := c.nodes[i]
		if out.died && n.up {
			res := n.sys.Kernel().StepResult()
			c.crashNode(n, t, c.cfg.RebootDowntime, "machine stopped: "+res.Reason)
		}
		for _, cp := range out.comps {
			c.scheduleReply(n, cp)
		}
	}
}

// timeoutRemaining resolves every still-open request as an explicit
// timeout when the horizon is reached (zero-lost backstop; deadlines
// normally fire first).
func (c *Cluster) timeoutRemaining(t sim.Cycles) {
	for _, r := range c.reqs {
		if !r.resolved {
			c.resolve(r, OutTimeout, kernel.ETIMEDOUT, t)
		}
	}
}

// clusterAudit captures and checks every live node's invariants — run
// after each node recovery (reboot), per the cluster-wide audit
// contract.
func (c *Cluster) clusterAudit(at sim.Cycles) {
	for _, n := range c.nodes {
		if !n.up {
			continue
		}
		c.auditChecks++
		viols := audit.Check(audit.Capture(n.sys.OS))
		if len(viols) > 0 {
			c.auditOK = false
			for _, v := range viols {
				c.violations = append(c.violations,
					fmt.Sprintf("t=%d node%d: %s", int64(at), n.idx, v.String()))
			}
		}
	}
}

// finalize runs each surviving node's final audit, folds statistics
// and tears the machines down.
func (c *Cluster) finalize() {
	for _, n := range c.nodes {
		if !n.up {
			continue
		}
		rep := n.aud.Final()
		_ = rep // folded below via the auditor's recorded reports
		c.foldNodeStats(n)
		n.sys.Shutdown("cluster: end of run")
		n.up = false
	}
}

// transition appends one line to the health-transition journal.
func (c *Cluster) transition(at sim.Cycles, nodeIdx int, what string) {
	c.transitions = append(c.transitions, fmt.Sprintf("t=%-10d node%d %s", int64(at), nodeIdx, what))
}
