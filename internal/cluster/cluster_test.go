package cluster

import (
	"testing"

	"repro/internal/kernel"
)

// quickConfig is a small, fast cluster configuration for tests.
func quickConfig() Config {
	return Config{
		Nodes:    3,
		Seed:     42,
		Workers:  1,
		Requests: 600,
		MeanGap:  6000,
	}
}

// stormConfig is quickConfig under the acceptance-criteria storm: one
// node crash plus 100 bp per class of flaky-link noise on every node.
func stormConfig() Config {
	cfg := quickConfig()
	cfg.Storm = Storm{
		Crashes: []NodeCrash{{Node: 1, At: 900_000, Downtime: 1_500_000}},
		Flaky: []NodeWindow{
			{Node: 0, From: 0, To: 1 << 40},
			{Node: 1, From: 0, To: 1 << 40},
			{Node: 2, From: 0, To: 1 << 40},
		},
		FlakyExtra: kernel.IPCFaultConfig{
			DropBP: 100, DupBP: 100, DelayBP: 100, ReorderBP: 100, CorruptBP: 100,
		},
	}
	return cfg
}

func TestClusterNoFaultsAllSucceed(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded != res.Requests {
		t.Errorf("fault-free cluster: %d/%d succeeded (degraded=%d timedout=%d lost=%d)",
			res.Succeeded, res.Requests, res.Degraded, res.TimedOut, res.Lost)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d requests", res.Lost)
	}
	if !res.Consistent {
		t.Errorf("audit violations: %v", res.Violations)
	}
	if res.P50 == 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Errorf("implausible percentiles: p50=%d p99=%d p999=%d", res.P50, res.P99, res.P999)
	}
}

func TestClusterStormZeroLostAndConsistent(t *testing.T) {
	res, err := Run(stormConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d requests under storm (succeeded=%d degraded=%d timedout=%d)",
			res.Lost, res.Succeeded, res.Degraded, res.TimedOut)
	}
	if res.Succeeded == 0 {
		t.Fatal("no request succeeded under storm")
	}
	if !res.Consistent {
		t.Errorf("cluster-wide audit failed: %v", res.Violations)
	}
	if res.AuditChecks == 0 {
		t.Error("no audit checks ran")
	}
	if res.NodeStats[1].Crashes != 1 || res.NodeStats[1].Boots != 2 {
		t.Errorf("node1 crash/reboot not reflected: %+v", res.NodeStats[1])
	}
	// Goodput must stay positive throughout the run.
	for i, g := range res.Goodput {
		if g == 0 {
			t.Errorf("goodput window %d/%d is zero: %v", i, len(res.Goodput), res.Goodput)
		}
	}
	// The crashed node had requests in flight; they must have been
	// failed over, not lost.
	if res.Failovers == 0 {
		t.Error("expected failovers when a node crashed mid-traffic")
	}
}

func TestClusterBrownOutShedsOnlyLowPriority(t *testing.T) {
	cfg := quickConfig()
	cfg.Nodes = 2
	cfg.NodeCapacity = 40 // 2*40 < demand(166/Mcy): permanent brown-out
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Fatal("undersized cluster never entered brown-out")
	}
	if res.ShedByClass[2] != 0 {
		t.Errorf("brown-out shed %d highest-priority requests", res.ShedByClass[2])
	}
	if res.ShedByClass[0] == 0 {
		t.Error("brown-out shed no lowest-priority requests")
	}
	if res.Succeeded == 0 {
		t.Error("brown-out served nothing")
	}
	if res.Lost != 0 {
		t.Errorf("lost %d requests", res.Lost)
	}
}

func TestClusterEveryRequestExplicitlyTerminated(t *testing.T) {
	cfg := stormConfig()
	cfg.Storm.Partitions = []NodeWindow{{Node: 2, From: 1_200_000, To: 2_600_000}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Succeeded + res.Degraded + res.TimedOut; got != res.Requests {
		t.Errorf("terminal outcomes %d != requests %d", got, res.Requests)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d requests", res.Lost)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := quickConfig()
	cfg.Net = kernel.IPCFaultConfig{DropBP: 10001}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range network rate accepted")
	}
	cfg = quickConfig()
	cfg.Storm.Crashes = []NodeCrash{{Node: 7, At: 1, Downtime: 1}}
	if _, err := Run(cfg); err == nil {
		t.Error("storm referencing nonexistent node accepted")
	}
	cfg = quickConfig()
	cfg.Storm.Crashes = []NodeCrash{{Node: 0, At: 1, Downtime: 0}}
	if _, err := Run(cfg); err == nil {
		t.Error("storm crash without downtime accepted")
	}
}

func TestRandomStormDeterministic(t *testing.T) {
	cfg := RandomStormConfig{Nodes: 3, Seed: 7, Horizon: 20_000_000, NodeCrashes: 2, PartitionBP: 300, FlakyBP: 100}
	a, err := RandomStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Crashes) != len(b.Crashes) || len(a.Partitions) != len(b.Partitions) {
		t.Errorf("RandomStorm not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Crashes {
		if a.Crashes[i].Node != b.Crashes[i].Node || a.Crashes[i].At != b.Crashes[i].At {
			t.Errorf("crash %d differs: %+v vs %+v", i, a.Crashes[i], b.Crashes[i])
		}
	}
	if _, err := RandomStorm(RandomStormConfig{Nodes: 0, Horizon: 1}); err == nil {
		t.Error("RandomStorm accepted zero nodes")
	}
	if _, err := RandomStorm(RandomStormConfig{Nodes: 1, Horizon: 1, PartitionBP: 20000}); err == nil {
		t.Error("RandomStorm accepted out-of-range PartitionBP")
	}
}
