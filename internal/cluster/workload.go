package cluster

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/usr"
)

// The open-loop workload: a seeded arrival process standing in for a
// large concurrent client population (arrivals never wait for earlier
// responses, so overload shows up as queueing and shed traffic, not as
// a self-throttling generator), plus the node agent — the init process
// of every machine — that executes requests against the node's own
// servers via real syscalls.

// msgRequest is the cluster request message type posted into a node
// agent's inbox (outside the kernel-reserved and proto ranges).
const msgRequest kernel.MsgType = 900

// opKind is the request operation mix.
type opKind int

const (
	opPut opKind = iota
	opGet
	opDel
	opFile
)

// keySpace bounds the DS key universe so gets and deletes hit.
const keySpace = 200

// agentServiceCost is the per-request bookkeeping charge (parse,
// authenticate, route) the agent pays before touching any server.
const agentServiceCost sim.Cycles = 2500

// genArrivals pre-draws the whole arrival schedule: times, priority
// classes, operations and payloads. One RNG, drawn in request order —
// the schedule is a pure function of the seed.
func (c *Cluster) genArrivals() {
	rng := sim.NewRNG(c.cfg.Seed ^ 0xA17C_64B3_9D0E_F215)
	t := sim.Cycles(0)
	for i := 0; i < c.cfg.Requests; i++ {
		t += sim.Cycles(1 + rng.Intn(int(2*c.cfg.MeanGap)-1))
		r := &request{
			id:       i,
			client:   rng.Intn(c.cfg.Clients),
			arrival:  t,
			deadline: t + c.cfg.Deadline,
			node:     -1,
		}
		switch cl := rng.Intn(100); {
		case cl < 50:
			r.class = 0
		case cl < 80:
			r.class = 1
		default:
			r.class = 2
		}
		switch op := rng.Intn(100); {
		case op < 40:
			r.op = opPut
		case op < 70:
			r.op = opGet
		case op < 85:
			r.op = opDel
		default:
			r.op = opFile
		}
		r.key = fmt.Sprintf("k%03d", rng.Intn(keySpace))
		r.val = fmt.Sprintf("v%d.%d", i, r.client)
		c.reqs = append(c.reqs, r)
		c.push(event{due: t, kind: evArrive, reqID: i})
		c.push(event{due: r.deadline, kind: evDeadline, reqID: i})
	}
	c.lastArrival = t
	c.unresolved = c.cfg.Requests
}

// agentProgram builds node n's init program: an event loop that
// receives cluster requests, executes them against the node's servers,
// and reports completions through the node's completion buffer (the
// driver drains it between slices; the scheduling baton provides the
// happens-before edge).
func (c *Cluster) agentProgram(n *node) usr.Program {
	return func(p *usr.Proc) int {
		ctx := p.Context()
		for {
			m := ctx.Receive()
			if m.Type != msgRequest {
				continue
			}
			reqID, attempt := int(m.A), int(m.B)
			// Completion timestamps are floored at the transport
			// delivery time: within one lockstep slice the node may do
			// the work at a local time slightly before the delivery's
			// cluster time, and causality (reply after request) must
			// hold in the cluster's time domain.
			deliverAt, _ := m.Aux.(sim.Cycles)
			stamp := func() sim.Cycles {
				if now := ctx.Now(); now > deliverAt {
					return now
				}
				return deliverAt
			}
			if m.C == 1 {
				// Corrupted on the wire: reject at the checksum and let
				// the balancer retry a clean copy.
				n.completions = append(n.completions, completion{
					reqID: reqID, attempt: attempt, errno: kernel.EINVAL, at: stamp(),
				})
				continue
			}
			p.Compute(agentServiceCost)
			errno := runOp(p, opKind(m.D), m.Str, m.Str2, reqID, attempt)
			n.completions = append(n.completions, completion{
				reqID: reqID, attempt: attempt, errno: errno, at: stamp(),
			})
		}
	}
}

// runOp executes one request operation via real syscalls. A key miss
// on get/delete is a valid answer, not a failure; genuine failures
// (ECRASH from a quarantined or recovering server, VFS errors) flow
// back to the balancer to drive the retry ladder.
func runOp(p *usr.Proc, op opKind, key, val string, reqID, attempt int) kernel.Errno {
	switch op {
	case opPut:
		return p.DsPut(key, val)
	case opGet:
		if _, errno := p.DsGet(key); errno != kernel.ENOENT {
			return errno
		}
		return kernel.OK
	case opDel:
		if errno := p.DsDelete(key); errno != kernel.ENOENT {
			return errno
		}
		return kernel.OK
	case opFile:
		// Attempt-unique path: a duplicate delivery or cross-node retry
		// never collides with a half-done earlier attempt.
		path := fmt.Sprintf("/q%d.%d", reqID, attempt)
		fd, errno := p.Create(path)
		if errno != kernel.OK {
			return errno
		}
		if _, errno = p.Write(fd, []byte(val)); errno != kernel.OK {
			p.Close(fd)
			return errno
		}
		if errno = p.Close(fd); errno != kernel.OK {
			return errno
		}
		return p.Unlink(path)
	}
	return kernel.EINVAL
}
