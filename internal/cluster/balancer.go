package cluster

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// The stateless load-balancer front end. "Stateless" in the service
// sense: it holds only routing/health state, never request payloads or
// application data, so it is trivially rebuildable — the availability
// story rests on the per-node recovery machinery plus the retry ladder
// here.

// Outcome classifies how a request terminated. Every generated request
// ends in exactly one of these — the zero-lost invariant.
type Outcome uint8

const (
	// OutSuccess: a node completed the request and the reply arrived.
	OutSuccess Outcome = iota
	// OutDegraded: brown-out mode shed the request at admission
	// (explicitly rejected, not dropped).
	OutDegraded
	// OutTimeout: the request exhausted its deadline or retry budget
	// and was failed with an explicit ETIMEDOUT.
	OutTimeout
)

// request is one client request's balancer-side state.
type request struct {
	id       int
	client   int
	class    int // priority: 0 lowest .. 2 highest
	op       opKind
	key, val string
	arrival  sim.Cycles
	deadline sim.Cycles

	attempt  int // attempts dispatched so far
	node     int // node serving the current attempt (-1 = parked)
	retries  int
	failover bool

	resolved bool
	outcome  Outcome
	errno    kernel.Errno
	doneAt   sim.Cycles
}

// admit runs the brown-out gate on a fresh arrival, then dispatches.
func (c *Cluster) admit(r *request, now sim.Cycles) {
	if r.class < c.shedBelow {
		c.m.shedByClass[r.class]++
		c.resolve(r, OutDegraded, kernel.OK, now)
		return
	}
	c.dispatch(r, -1, now)
}

// dispatch sends request r's next attempt to a healthy node, avoiding
// exclude (the node that just failed it) when any alternative exists,
// and arms the attempt's backoff timer. With no healthy node at all
// the request parks and the timer doubles as a re-dispatch probe.
func (c *Cluster) dispatch(r *request, exclude int, now sim.Cycles) {
	n := c.pickNode(exclude)
	if n == nil {
		r.node = -1
		c.push(event{due: now + c.backoff(r.attempt+1), kind: evRetry, reqID: r.id, attempt: r.attempt})
		return
	}
	r.attempt++
	r.node = n.idx
	if r.attempt > 1 {
		r.retries++
		c.m.retries++
	}
	c.sendRequest(n, r, now)
	c.push(event{due: now + c.backoff(r.attempt), kind: evRetry, reqID: r.id, attempt: r.attempt})
}

// pickNode selects the next healthy node round-robin, skipping exclude
// unless it is the only healthy node left. Routing consults only the
// balancer's health view, never the nodes' actual liveness: a node
// that just died keeps receiving traffic (which the network then eats)
// until the health ladder notices — exactly like a real front end.
func (c *Cluster) pickNode(exclude int) *node {
	var fallback *node
	nn := len(c.nodes)
	for i := 0; i < nn; i++ {
		n := c.nodes[(c.rr+i)%nn]
		if !n.lbHealthy {
			continue
		}
		if n.idx == exclude {
			fallback = n
			continue
		}
		c.rr = (n.idx + 1) % nn
		return n
	}
	if fallback != nil {
		c.rr = (fallback.idx + 1) % nn
	}
	return fallback
}

// backoff is the capped exponential retry delay for attempt k (1-based).
func (c *Cluster) backoff(attempt int) sim.Cycles {
	d := c.cfg.RetryBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= c.cfg.RetryCap {
			return c.cfg.RetryCap
		}
	}
	if d > c.cfg.RetryCap {
		d = c.cfg.RetryCap
	}
	return d
}

// handleRetry fires when an attempt's backoff timer elapses with no
// reply: the attempt is presumed lost (network drop, node death,
// partition), charged to the serving node's breaker, and the request
// re-dispatched elsewhere — or failed explicitly once the budget is
// spent.
func (c *Cluster) handleRetry(ev event) {
	r := c.reqs[ev.reqID]
	if r.resolved || r.attempt != ev.attempt {
		return // answered, or a newer attempt owns the request
	}
	c.noteFailure(r.node, ev.due)
	if r.attempt >= c.cfg.RetryMax {
		c.resolve(r, OutTimeout, kernel.ETIMEDOUT, ev.due)
		return
	}
	c.dispatch(r, r.node, ev.due)
}

// deliverReply lands one node reply at the balancer.
func (c *Cluster) deliverReply(ev event) {
	r := c.reqs[ev.reqID]
	if r.resolved {
		c.m.dupReplies++
		return
	}
	if ev.corrupt {
		// Fails the checksum at the balancer; the retry timer covers it.
		c.m.corruptRejected++
		return
	}
	n := c.nodes[ev.node]
	if ev.errno == kernel.OK {
		n.served++
		n.consecFails = 0
		c.resolve(r, OutSuccess, kernel.OK, ev.due)
		return
	}
	// An explicit failure from the node (in-node crash/quarantine
	// surfaced as ECRASH, a checksum reject, ...): retry immediately on
	// a different node rather than waiting out the backoff.
	c.noteFailure(ev.node, ev.due)
	if r.attempt >= c.cfg.RetryMax {
		c.resolve(r, OutTimeout, kernel.ETIMEDOUT, ev.due)
		return
	}
	c.dispatch(r, ev.node, ev.due)
}

// resolve terminates a request exactly once.
func (c *Cluster) resolve(r *request, out Outcome, errno kernel.Errno, now sim.Cycles) {
	if r.resolved {
		return
	}
	r.resolved = true
	r.outcome = out
	r.errno = errno
	r.doneAt = now
	c.unresolved--
	c.m.record(r)
}

// noteFailure charges one failed attempt to a node's breaker.
func (c *Cluster) noteFailure(nodeIdx int, now sim.Cycles) {
	if nodeIdx < 0 {
		return
	}
	n := c.nodes[nodeIdx]
	n.consecFails++
	if n.lbHealthy && n.consecFails >= c.cfg.BreakerFails {
		c.markUnhealthy(n, now, fmt.Sprintf("breaker: %d consecutive failures", n.consecFails))
	}
}

// pollRound probes every node's Recovery Server once: unreachable
// nodes accumulate misses toward an unhealthy verdict, reachable ones
// report in-node quarantines (a degraded node drains), and recovered
// nodes are readmitted after the hold expires.
func (c *Cluster) pollRound(now sim.Cycles) {
	for _, n := range c.nodes {
		c.pollNode(n, now)
	}
	c.recomputeBrownout(now)
	if c.unresolved > 0 {
		c.push(event{due: now + c.cfg.HealthEvery, kind: evPoll})
	}
}

func (c *Cluster) pollNode(n *node, now sim.Cycles) {
	reachable := n.up && !c.partitioned(n.idx, now)
	if !reachable {
		n.missPolls++
		if n.lbHealthy && n.missPolls >= c.cfg.HealthMisses {
			c.markUnhealthy(n, now, fmt.Sprintf("unreachable: %d missed polls", n.missPolls))
		}
		return
	}
	n.missPolls = 0
	if h, ok := n.rsHealth(); ok && h.Quarantines > 0 {
		// A quarantined component is gone for this incarnation: the
		// node serves degraded at best, so route around it until the
		// next reboot replaces the machine.
		if n.lbHealthy {
			c.markUnhealthy(n, now, "rs: component quarantined")
		}
		return
	}
	if !n.lbHealthy && now >= n.holdUntil {
		c.markHealthy(n, now)
	}
}

// markUnhealthy removes a node from rotation and fails over every
// request currently in flight on it.
func (c *Cluster) markUnhealthy(n *node, now sim.Cycles, why string) {
	n.lbHealthy = false
	n.unhealthyMarks++
	n.holdUntil = now + c.cfg.BreakerHold
	c.transition(now, n.idx, "unhealthy ("+why+")")
	c.recomputeBrownout(now)
	c.failover(n.idx, now)
}

// markHealthy readmits a node to rotation.
func (c *Cluster) markHealthy(n *node, now sim.Cycles) {
	n.lbHealthy = true
	n.consecFails = 0
	c.transition(now, n.idx, "healthy")
	c.recomputeBrownout(now)
}

// failover re-dispatches every in-flight request whose current attempt
// sits on the newly unhealthy node, in request order.
func (c *Cluster) failover(nodeIdx int, now sim.Cycles) {
	for _, r := range c.reqs {
		if r.resolved || r.node != nodeIdx || r.attempt == 0 {
			continue
		}
		c.m.failovers++
		r.failover = true
		if r.attempt >= c.cfg.RetryMax {
			c.resolve(r, OutTimeout, kernel.ETIMEDOUT, now)
			continue
		}
		c.dispatch(r, nodeIdx, now)
	}
}

// recomputeBrownout rederives the shed cutoff from healthy capacity
// versus offered demand. Class 2 (highest) is never shed: with zero
// capacity nothing can be served anyway, and parked class-2 requests
// keep probing until a node returns or their deadline fires.
func (c *Cluster) recomputeBrownout(now sim.Cycles) {
	healthy := 0
	for _, n := range c.nodes {
		if n.up && n.lbHealthy {
			healthy++
		}
	}
	demandPerM := int(1_000_000 / c.cfg.MeanGap) // offered requests per megacycle
	capacity := healthy * c.cfg.NodeCapacity
	cutoff := 0
	if capacity < demandPerM {
		cutoff = 1
	}
	if 3*capacity < 2*demandPerM {
		cutoff = 2
	}
	if cutoff != c.shedBelow {
		c.transitions = append(c.transitions,
			fmt.Sprintf("t=%-10d brown-out: shed classes < %d (healthy=%d, capacity=%d/Mcy, demand=%d/Mcy)",
				int64(now), cutoff, healthy, capacity, demandPerM))
		c.shedBelow = cutoff
	}
}
