package cluster

import (
	"container/heap"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// The inter-node transport: a seeded network model whose per-message
// fates mirror the kernel IPC fault plane's ladder (drop → duplicate →
// delay → reorder → corrupt, one roll in basis points over 10,000), and
// a (due, seq)-ordered event queue that serializes every cross-node
// interaction so the run is deterministic regardless of how node
// stepping is scheduled onto OS threads.

// evKind enumerates cluster events.
type evKind uint8

const (
	// evArrive admits one generated client request to the balancer.
	evArrive evKind = iota
	// evReqDeliver delivers a dispatched request at a node.
	evReqDeliver
	// evReply delivers a node's reply at the balancer.
	evReply
	// evRetry fires a request attempt's backoff timer.
	evRetry
	// evDeadline fires a request's end-to-end deadline.
	evDeadline
	// evPoll runs one balancer health-poll round over all nodes.
	evPoll
	// evReboot brings a crashed node back up.
	evReboot
)

// event is one scheduled cluster interaction.
type event struct {
	due     sim.Cycles
	seq     uint64
	kind    evKind
	node    int
	reqID   int
	attempt int
	errno   kernel.Errno
	corrupt bool
}

// eventHeap orders events by (due, seq): virtual time first, creation
// order as the deterministic tie-break.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// push schedules ev, stamping the tie-break sequence.
func (c *Cluster) push(ev event) {
	c.evSeq++
	ev.seq = c.evSeq
	heap.Push(&c.events, ev)
}

// pumpEvents processes every event due strictly before boundary t, in
// (due, seq) order. Handlers may push further events; pushes that land
// before t are processed in the same pump.
func (c *Cluster) pumpEvents(t sim.Cycles) {
	for c.events.Len() > 0 && c.events[0].due < t {
		ev := heap.Pop(&c.events).(event)
		switch ev.kind {
		case evArrive:
			c.admit(c.reqs[ev.reqID], ev.due)
		case evReqDeliver:
			c.deliverRequest(ev)
		case evReply:
			c.deliverReply(ev)
		case evRetry:
			c.handleRetry(ev)
		case evDeadline:
			if r := c.reqs[ev.reqID]; !r.resolved {
				c.resolve(r, OutTimeout, kernel.ETIMEDOUT, ev.due)
			}
		case evPoll:
			c.pollRound(ev.due)
		case evReboot:
			n := c.nodes[ev.node]
			if !n.up {
				c.bootNode(n, ev.due)
				c.clusterAudit(ev.due)
			}
		}
	}
}

// fate is the transport's verdict on one transmission.
type fate struct {
	drop    bool
	dup     bool
	corrupt bool
	extra   sim.Cycles
}

// netModel rolls seeded fates and latencies for inter-node messages.
type netModel struct {
	rng    *sim.RNG
	base   sim.Cycles
	jitter sim.Cycles
}

func newNetModel(cfg Config) *netModel {
	return &netModel{
		rng:    sim.NewRNG(cfg.Seed ^ 0xC1D2E3F4A5B60718),
		base:   cfg.NetDelay,
		jitter: cfg.NetJitter,
	}
}

// roll draws one fate under the given rates — the same ladder and the
// same order as the kernel fault plane's per-message roll, so one
// mental model covers both the in-machine and the inter-node network.
func (nm *netModel) roll(rates kernel.IPCFaultConfig) fate {
	r := nm.rng.Intn(10000)
	if r < rates.DropBP {
		return fate{drop: true}
	}
	r -= rates.DropBP
	if r < rates.DupBP {
		return fate{dup: true}
	}
	r -= rates.DupBP
	if r < rates.DelayBP {
		d := rates.DelayCycles
		if d == 0 {
			d = kernel.DefaultIPCDelayCycles
		}
		return fate{extra: d}
	}
	r -= rates.DelayBP
	if r < rates.ReorderBP {
		// A reordered message is one that arrives behind traffic sent
		// after it: model it as a burst of extra latency.
		return fate{extra: 3 * nm.jitter}
	}
	r -= rates.ReorderBP
	if r < rates.CorruptBP {
		return fate{corrupt: true}
	}
	return fate{}
}

// delay draws one one-way latency for a message with fate f.
func (nm *netModel) delay(f fate) sim.Cycles {
	d := nm.base + f.extra
	if nm.jitter > 0 {
		d += sim.Cycles(nm.rng.Intn(int(nm.jitter)))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// linkRates returns the effective fault rates on node idx's link at
// time t: the background rates plus the storm's flaky-window extra.
func (c *Cluster) linkRates(idx int, t sim.Cycles) kernel.IPCFaultConfig {
	rates := c.cfg.Net
	for _, w := range c.cfg.Storm.Flaky {
		if w.Node == idx && w.From <= t && t < w.To {
			x := c.cfg.Storm.FlakyExtra
			rates.DropBP += x.DropBP
			rates.DupBP += x.DupBP
			rates.DelayBP += x.DelayBP
			rates.ReorderBP += x.ReorderBP
			rates.CorruptBP += x.CorruptBP
			if x.DelayCycles > rates.DelayCycles {
				rates.DelayCycles = x.DelayCycles
			}
		}
	}
	return rates
}

// partitioned reports whether node idx is inside a partition window at
// time t (both directions of its link are dead).
func (c *Cluster) partitioned(idx int, t sim.Cycles) bool {
	for _, w := range c.cfg.Storm.Partitions {
		if w.Node == idx && w.From <= t && t < w.To {
			return true
		}
	}
	return false
}

// sendRequest transmits request r's current attempt to node n: one
// fate roll, then an evReqDeliver (twice when duplicated).
func (c *Cluster) sendRequest(n *node, r *request, now sim.Cycles) {
	f := c.net.roll(c.linkRates(n.idx, now))
	c.noteFate(f)
	if f.drop {
		return
	}
	ev := event{
		due:     now + c.net.delay(f),
		kind:    evReqDeliver,
		node:    n.idx,
		reqID:   r.id,
		attempt: r.attempt,
		corrupt: f.corrupt,
	}
	c.push(ev)
	if f.dup {
		ev.due = now + c.net.delay(f)
		c.push(ev)
	}
}

// scheduleReply transmits one node completion back to the balancer.
func (c *Cluster) scheduleReply(n *node, cp completion) {
	f := c.net.roll(c.linkRates(n.idx, cp.at))
	c.noteFate(f)
	if f.drop {
		return
	}
	ev := event{
		due:     cp.at + c.net.delay(f),
		kind:    evReply,
		node:    n.idx,
		reqID:   cp.reqID,
		attempt: cp.attempt,
		errno:   cp.errno,
		corrupt: f.corrupt,
	}
	c.push(ev)
	if f.dup {
		ev.due = cp.at + c.net.delay(f)
		c.push(ev)
	}
}

// noteFate accounts one transmission's fate in the network counters.
func (c *Cluster) noteFate(f fate) {
	c.m.netSends++
	switch {
	case f.drop:
		c.m.netDrops++
	case f.dup:
		c.m.netDups++
	case f.corrupt:
		c.m.netCorrupts++
	case f.extra > 0:
		c.m.netDelays++
	}
}

// deliverRequest lands a request at its node: lost if the node is down
// or partitioned, otherwise posted into the node agent's inbox.
func (c *Cluster) deliverRequest(ev event) {
	n := c.nodes[ev.node]
	if !n.up || c.partitioned(ev.node, ev.due) {
		c.m.lateDrops++
		return
	}
	m := kernel.Message{
		Type: msgRequest,
		A:    int64(ev.reqID),
		B:    int64(ev.attempt),
		// The transport delivery time rides along so the agent can
		// floor its completion timestamp at it: the node may execute
		// the request while still stepping toward this boundary, and a
		// reply must never appear to precede its own request.
		Aux: ev.due,
	}
	r := c.reqs[ev.reqID]
	if ev.corrupt {
		m.C = 1
	}
	m.D = int64(r.op)
	m.Str = r.key
	m.Str2 = r.val
	if err := n.sys.Kernel().PostMessage(kernel.EpKernel, n.agentEP, m); err != nil {
		c.m.lateDrops++
	}
}
