package cluster

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Node-level fault schedules. A Storm is data, fixed before the run
// starts, so identical configurations replay identically; RandomStorm
// derives one from a seed for campaigns and demos.

// NodeCrash schedules a whole-machine crash: the node is torn down at
// At and reboots (fresh machine, same cluster clock) after Downtime.
type NodeCrash struct {
	Node     int
	At       sim.Cycles
	Downtime sim.Cycles

	applied bool
}

// NodeWindow is a [From, To) interval on one node's link, used for
// both full partitions and flaky-link windows.
type NodeWindow struct {
	Node     int
	From, To sim.Cycles
}

// CompFault fail-stops one in-node component at At; the node's own
// recovery engine (and, if it escalates to quarantine, the balancer's
// health polling) takes it from there.
type CompFault struct {
	Node int
	EP   kernel.Endpoint
	At   sim.Cycles

	applied bool
}

// Storm is a complete node-level fault schedule.
type Storm struct {
	// Crashes are whole-node crash/reboot cycles.
	Crashes []NodeCrash
	// Partitions are windows during which a node's link drops
	// everything, both directions.
	Partitions []NodeWindow
	// Flaky are windows during which FlakyExtra is added to the
	// background fault rates on a node's link.
	Flaky      []NodeWindow
	FlakyExtra kernel.IPCFaultConfig
	// CompFaults are scheduled in-node component fail-stops.
	CompFaults []CompFault
}

// validate rejects schedules referencing nonexistent nodes or carrying
// invalid extra rates.
func (s Storm) validate(nodes int) error {
	checkNode := func(kind string, n int) error {
		if n < 0 || n >= nodes {
			return fmt.Errorf("cluster: storm %s references node %d, have %d nodes", kind, n, nodes)
		}
		return nil
	}
	for _, ev := range s.Crashes {
		if err := checkNode("crash", ev.Node); err != nil {
			return err
		}
		if ev.Downtime <= 0 {
			return fmt.Errorf("cluster: storm crash of node %d needs Downtime > 0", ev.Node)
		}
	}
	for _, w := range s.Partitions {
		if err := checkNode("partition", w.Node); err != nil {
			return err
		}
	}
	for _, w := range s.Flaky {
		if err := checkNode("flaky window", w.Node); err != nil {
			return err
		}
	}
	for _, ev := range s.CompFaults {
		if err := checkNode("component fault", ev.Node); err != nil {
			return err
		}
	}
	if len(s.Flaky) > 0 {
		if err := s.FlakyExtra.Validate(); err != nil {
			return fmt.Errorf("cluster: storm FlakyExtra: %w", err)
		}
	}
	return nil
}

// RandomStormConfig parameterizes RandomStorm.
type RandomStormConfig struct {
	Nodes   int
	Seed    uint64
	Horizon sim.Cycles
	// NodeCrashes schedules this many whole-node crash/reboot cycles,
	// spread across nodes and the middle of the horizon.
	NodeCrashes int
	// PartitionBP is the per-node, per-slot chance (basis points) of a
	// one-slot partition window; slots are 1,000,000 cycles.
	PartitionBP int
	// FlakyBP, when non-zero, makes every node's link flaky for the
	// whole horizon with FlakyBP added to each fault class.
	FlakyBP int
}

// stormSlot is the granularity of randomized partition windows.
const stormSlot sim.Cycles = 1_000_000

// RandomStorm derives a deterministic fault schedule from a seed.
func RandomStorm(cfg RandomStormConfig) (Storm, error) {
	if cfg.Nodes < 1 {
		return Storm{}, fmt.Errorf("cluster: RandomStorm needs Nodes >= 1, got %d", cfg.Nodes)
	}
	if cfg.Horizon <= 0 {
		return Storm{}, fmt.Errorf("cluster: RandomStorm needs Horizon > 0")
	}
	if cfg.PartitionBP < 0 || cfg.PartitionBP > 10000 {
		return Storm{}, fmt.Errorf("cluster: RandomStorm PartitionBP %d out of range [0,10000]", cfg.PartitionBP)
	}
	rng := sim.NewRNG(cfg.Seed ^ 0x5701244D00F1E2C3)
	var s Storm
	for i := 0; i < cfg.NodeCrashes; i++ {
		// Crashes land in the middle 60% of the horizon, round-robin
		// across nodes, with seeded scatter.
		at := cfg.Horizon/5 + sim.Cycles(rng.Intn(int(3*cfg.Horizon/5)))
		s.Crashes = append(s.Crashes, NodeCrash{
			Node:     i % cfg.Nodes,
			At:       at,
			Downtime: stormSlot + sim.Cycles(rng.Intn(int(stormSlot))),
		})
	}
	if cfg.PartitionBP > 0 {
		for n := 0; n < cfg.Nodes; n++ {
			for t := sim.Cycles(0); t < cfg.Horizon; t += stormSlot {
				if rng.Intn(10000) < cfg.PartitionBP {
					s.Partitions = append(s.Partitions, NodeWindow{Node: n, From: t, To: t + stormSlot})
				}
			}
		}
	}
	if cfg.FlakyBP > 0 {
		for n := 0; n < cfg.Nodes; n++ {
			s.Flaky = append(s.Flaky, NodeWindow{Node: n, From: 0, To: cfg.Horizon})
		}
		s.FlakyExtra = kernel.IPCFaultConfig{
			DropBP: cfg.FlakyBP, DupBP: cfg.FlakyBP, DelayBP: cfg.FlakyBP,
			ReorderBP: cfg.FlakyBP, CorruptBP: cfg.FlakyBP,
		}
	}
	return s, nil
}
