package cluster

import (
	"reflect"
	"testing"
)

// The cluster is a deterministic co-simulation: node stepping fans out
// over a worker pool, but nodes share no mutable state mid-slice and
// every cross-node interaction is serialized through the (due, seq)
// event queue on the driver goroutine. The whole Result — latency
// percentiles and histogram, outcome counts, audit verdicts, health
// transitions — must therefore be bit-identical for every worker count
// and for repeated runs with the same seed (the cluster analogue of
// faultinject's ipc_equiv_test).

func TestClusterIdenticalAcrossWorkerCounts(t *testing.T) {
	base := stormConfig()
	base.Workers = 1
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d: cluster run diverged from serial:\nserial: %+v\ngot:    %+v",
				workers, serial, got)
		}
	}
}

func TestClusterSameSeedRepeatable(t *testing.T) {
	cfg := stormConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different results:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

func TestClusterSeedChangesOutcome(t *testing.T) {
	a, err := Run(stormConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := stormConfig()
	cfg.Seed = 1337
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.LatencyHist, b.LatencyHist) && a.P999 == b.P999 && a.Retries == b.Retries {
		t.Error("different seeds produced identical latency profiles — RNG plumbing suspect")
	}
}
