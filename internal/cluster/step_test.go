package cluster

import (
	"reflect"
	"testing"

	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/seep"
	"repro/internal/sim"
	"repro/internal/usr"
)

// StepUntil must be observably identical to Run for a machine that
// finishes on its own: same outcome, same final cycle count, same
// counters — regardless of the slice length it is stepped with. This
// is the foundation the whole cluster composition rests on.

func stepWorkload(p *usr.Proc) int {
	for i := 0; i < 40; i++ {
		key := string(rune('a' + i%7))
		if errno := p.DsPut(key, "v"); errno != kernel.OK {
			return 1
		}
		if _, errno := p.DsGet(key); errno != kernel.OK {
			return 1
		}
		p.Compute(1000)
	}
	fd, errno := p.Create("/f")
	if errno != kernel.OK {
		return 1
	}
	p.Write(fd, []byte("data"))
	p.Close(fd)
	return 0
}

func bootStepMachine() *boot.System {
	return boot.Boot(boot.Options{
		Config:     core.Config{Policy: seep.PolicyEnhanced, Seed: 99},
		Registry:   usr.NewRegistry(),
		Heartbeats: true,
	}, stepWorkload)
}

func TestStepUntilEquivalentToRun(t *testing.T) {
	const limit = 50_000_000

	ref := bootStepMachine()
	refRes := ref.Run(limit)

	for _, quantum := range []sim.Cycles{1_000, 37_000, 100_000, 5_000_000} {
		sys := bootStepMachine()
		k := sys.Kernel()
		k.BeginSteps(limit)
		var target sim.Cycles
		for !k.StepUntil(target) {
			if target > refRes.Cycles+10*quantum {
				t.Fatalf("quantum %d: stepped machine did not finish by t=%d (Run finished at %d)",
					quantum, target, refRes.Cycles)
			}
			target += quantum
		}
		got := k.StepResult()
		sys.Shutdown("test done")
		if got.Outcome != refRes.Outcome || got.Reason != refRes.Reason || got.Cycles != refRes.Cycles {
			t.Errorf("quantum %d: stepped result %+v != Run result %+v", quantum, got, refRes)
		}
		if a, b := ref.Kernel().Counters().Snapshot(), sys.Kernel().Counters().Snapshot(); !reflect.DeepEqual(a, b) {
			t.Errorf("quantum %d: counters diverged between Run and StepUntil", quantum)
		}
	}
}

func TestStepUntilIdleIsNotDeadlock(t *testing.T) {
	// A machine whose only user process blocks in Receive is idle, not
	// dead: stepping must park at each boundary without declaring an
	// outcome, and a posted message must wake it.
	got := make(chan kernel.Message, 1)
	sys := boot.Boot(boot.Options{
		Config:   core.Config{Policy: seep.PolicyEnhanced, Seed: 7},
		Registry: usr.NewRegistry(),
	}, func(p *usr.Proc) int {
		m := p.Context().Receive()
		got <- m
		return 0
	})
	k := sys.Kernel()
	k.BeginSteps(1 << 40)
	if done := k.StepUntil(1_000_000); done {
		t.Fatalf("idle machine declared done: %+v", k.StepResult())
	}
	if now := k.Now(); now != 1_000_000 {
		t.Fatalf("idle machine parked at t=%d, want slice boundary 1000000", now)
	}
	if err := k.PostMessage(kernel.EpKernel, sys.InitEP(), kernel.Message{Type: 900, A: 5}); err != nil {
		t.Fatal(err)
	}
	if done := k.StepUntil(3_000_000); !done {
		t.Fatal("machine did not finish after its wake-up message")
	}
	if res := k.StepResult(); res.Outcome != kernel.OutcomeCompleted {
		t.Fatalf("unexpected outcome: %+v", res)
	}
	select {
	case m := <-got:
		if m.A != 5 {
			t.Errorf("delivered message A=%d, want 5", m.A)
		}
	default:
		t.Error("workload never saw the posted message")
	}
	sys.Shutdown("test done")
}

func TestTeardownIsIdempotent(t *testing.T) {
	sys := boot.Boot(boot.Options{
		Config:   core.Config{Policy: seep.PolicyEnhanced, Seed: 3},
		Registry: usr.NewRegistry(),
	}, func(p *usr.Proc) int {
		p.Context().Receive() // blocks forever
		return 0
	})
	k := sys.Kernel()
	k.BeginSteps(1 << 40)
	k.StepUntil(10_000)
	sys.Shutdown("first")
	sys.Shutdown("second")
	if res := k.StepResult(); res.Outcome != kernel.OutcomeShutdown || res.Reason != "first" {
		t.Errorf("teardown result %+v, want shutdown with first reason", res)
	}
	if !k.StepUntil(20_000) {
		t.Error("StepUntil on a torn-down machine must report done")
	}
}
