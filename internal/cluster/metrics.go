package cluster

import (
	"math/bits"
	"sort"

	"repro/internal/sim"
)

// metrics accumulates during the run; Result is the deterministic,
// comparison-friendly summary (plain integers and strings throughout,
// so worker-equivalence tests can reflect.DeepEqual whole results).

// goodputWindows is how many equal time windows the goodput timeline
// is bucketed into.
const goodputWindows = 8

type metrics struct {
	latencies   []sim.Cycles // successful requests only
	successAt   []sim.Cycles
	shedByClass [3]int

	retries         int
	failovers       int
	dupReplies      int
	corruptRejected int
	lateDrops       int

	netSends    int
	netDrops    int
	netDups     int
	netDelays   int
	netCorrupts int

	succeeded int
	degraded  int
	timedOut  int
	lastDone  sim.Cycles
}

// record folds one resolved request.
func (m *metrics) record(r *request) {
	switch r.outcome {
	case OutSuccess:
		m.succeeded++
		m.latencies = append(m.latencies, r.doneAt-r.arrival)
		m.successAt = append(m.successAt, r.doneAt)
	case OutDegraded:
		m.degraded++
	case OutTimeout:
		m.timedOut++
	}
	if r.doneAt > m.lastDone {
		m.lastDone = r.doneAt
	}
}

// NodeStats is one node's lifetime summary across all incarnations.
type NodeStats struct {
	Boots          int
	Crashes        int
	Served         int
	UnhealthyMarks int
	Recoveries     int64
	Quarantines    int64
	HangKills      int64
}

// Result summarizes a cluster run.
type Result struct {
	Nodes    int
	Requests int

	Succeeded int
	Degraded  int
	TimedOut  int
	// Lost is Requests minus the three terminal classes; the zero-lost
	// invariant means it is always 0.
	Lost int

	// Latency percentiles over successful requests, in cycles.
	P50, P99, P999, MaxLatency sim.Cycles
	// LatencyHist buckets successful latencies by bit length (log2).
	LatencyHist []int
	// Goodput counts successful completions per equal-width window of
	// the run; "goodput stayed positive throughout" means every window
	// that starts before the last success is non-zero.
	Goodput []int

	Retries         int
	Failovers       int
	ShedByClass     [3]int
	DupReplies      int
	CorruptRejected int
	LateDrops       int

	NetSends, NetDrops, NetDups, NetDelays, NetCorrupts int

	NodeStats []NodeStats

	// AuditChecks counts consistency checks (per-recovery, per-reboot
	// cluster-wide, and final); Consistent is the conjunction.
	AuditChecks int
	Consistent  bool
	Violations  []string

	// Transitions is the health/brown-out journal (demo output and a
	// determinism witness).
	Transitions []string

	// EndTime is the virtual time of the last resolution.
	EndTime sim.Cycles
}

// result assembles the final Result.
func (c *Cluster) result() Result {
	res := Result{
		Nodes:           c.cfg.Nodes,
		Requests:        c.cfg.Requests,
		Succeeded:       c.m.succeeded,
		Degraded:        c.m.degraded,
		TimedOut:        c.m.timedOut,
		Retries:         c.m.retries,
		Failovers:       c.m.failovers,
		ShedByClass:     c.m.shedByClass,
		DupReplies:      c.m.dupReplies,
		CorruptRejected: c.m.corruptRejected,
		LateDrops:       c.m.lateDrops,
		NetSends:        c.m.netSends,
		NetDrops:        c.m.netDrops,
		NetDups:         c.m.netDups,
		NetDelays:       c.m.netDelays,
		NetCorrupts:     c.m.netCorrupts,
		AuditChecks:     c.auditChecks,
		Consistent:      c.auditOK,
		Violations:      c.violations,
		Transitions:     c.transitions,
		EndTime:         c.m.lastDone,
	}
	res.Lost = res.Requests - res.Succeeded - res.Degraded - res.TimedOut

	lats := make([]sim.Cycles, len(c.m.latencies))
	copy(lats, c.m.latencies)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.P50 = pct(lats, 50, 100)
	res.P99 = pct(lats, 99, 100)
	res.P999 = pct(lats, 999, 1000)
	if len(lats) > 0 {
		res.MaxLatency = lats[len(lats)-1]
	}
	res.LatencyHist = make([]int, 0)
	for _, l := range c.m.latencies {
		b := bits.Len64(uint64(l))
		for len(res.LatencyHist) <= b {
			res.LatencyHist = append(res.LatencyHist, 0)
		}
		res.LatencyHist[b]++
	}

	res.Goodput = make([]int, goodputWindows)
	if c.m.lastDone > 0 {
		for _, at := range c.m.successAt {
			w := int(sim.Cycles(goodputWindows) * at / (c.m.lastDone + 1))
			res.Goodput[w]++
		}
	}

	for _, n := range c.nodes {
		res.NodeStats = append(res.NodeStats, NodeStats{
			Boots:          n.boots,
			Crashes:        n.crashes,
			Served:         n.served,
			UnhealthyMarks: n.unhealthyMarks,
			Recoveries:     n.recoveries,
			Quarantines:    n.quarantines,
			HangKills:      n.hangKills,
		})
	}
	return res
}

// pct picks the num/den percentile of a sorted slice (0 when empty).
func pct(sorted []sim.Cycles, num, den int) sim.Cycles {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[(len(sorted)-1)*num/den]
}
