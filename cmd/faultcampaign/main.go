// Command faultcampaign runs the paper's survivability experiment: a
// large-scale one-fault-per-boot injection campaign over the prototype
// test suite, classified as pass / fail / shutdown / crash (§VI-B).
// With -faults N (N >= 2) it instead runs the multi-fault cascade
// campaign: N faults armed per boot (independent, correlated with a
// prior recovery, or planted in the recovery path), with the extra
// degraded-pass class for runs that survived by quarantining a
// component.
//
// Usage:
//
//	faultcampaign [-policy all|enhanced|...] [-model failstop|edfi|ipcmix]
//	              [-samples N] [-maxruns N] [-seed N] [-profile]
//	              [-faults N] [-runs N] [-workers N] [-coldboot] [-noelide]
//	              [-snapcache SIZE]
//	              [-record DIR] [-resume JOURNAL] [-quiet] [-gate=false]
//	              [-ipcfaults] [-droprate BP] [-duprate BP] [-delayrate BP]
//	              [-reorderrate BP] [-corruptrate BP] [-ipcseed N]
//	              [-ipctimeout CYCLES] [-ipcretry N]
//	              [-nodes N] [-partitionrate BP]
//	              [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// Campaigns are crash-tolerant and replayable:
//
//   - -resume JOURNAL appends every completed run to an append-only,
//     checksummed journal file and, when the file already exists (e.g.
//     after the process was killed), skips the journaled runs and
//     continues where the campaign stopped — the final tables are
//     bit-identical to an uninterrupted campaign at any -workers count.
//     A torn or corrupt journal tail is dropped and re-executed. The
//     journal pins the campaign's identity (policy, model, seed, plan);
//     resuming with different flags is refused. Requires a single
//     -policy (not "all").
//   - -record DIR writes one self-contained JSON trace per failed,
//     crashed, degraded or audit-inconsistent run; `rcbreport -replay`
//     re-executes a trace bit-identically and diffs the outcome.
//   - The exit status is 1 when any run failed, crashed, or was
//     audit-inconsistent (2 for usage errors), so CI can gate on
//     campaign health. -gate=false opts out (a lossy campaign is the
//     measurement, not a tool failure); -quiet suppresses the per-run
//     detail lines (warm-plane stats, inconsistent seeds) but keeps
//     the tables.
//
// -snapcache takes a byte count with an optional KiB/MiB/GiB suffix;
// malformed values (and malformed OSIRIS_SNAPSHOT_CACHE settings) are
// rejected at startup.
//
// With -nodes N (N >= 1) the command instead runs the cluster storm
// campaign: N machines composed behind the load balancer, -runs
// independent seeded fault storms (whole-node crashes, randomized
// partition windows at -partitionrate basis points per slot, flaky
// links on every node), each checked for the cluster invariants —
// zero lost requests, cluster-wide audit consistency, goodput never
// fully dark. The -*rate flags set the background network rates.
// All basis-point rates must lie in [0, 10000].
//
// The -model ipcmix campaign arms one transport fault (drop, duplicate,
// delay, reorder or payload corruption of a component's next outgoing
// message) per boot. Independently, -ipcfaults / -*rate add background
// transport faults (basis points per transmission) to every run of any
// campaign; both force the end-to-end reliability layer on, and every
// run is audited for cross-server consistency — the Consistent column
// reports the share of runs with no invariant violation, and the seeds
// of inconsistent runs are printed for exact replay.
//
// Campaign boots are independent simulated machines and fan out across
// -workers threads; results are bit-identical for every worker count
// (-workers 1 is the historical serial path). Runs fork from the
// snapshot ladder of one warm pathfinder machine per policy: each armed
// run resumes from the deepest captured mid-suite rung before its
// trigger. -snapcache bounds the ladder's snapshot cache in bytes
// (negative: boot-barrier snapshot only; default from
// OSIRIS_SNAPSHOT_CACHE or 256 MiB), and -coldboot (or the
// OSIRIS_COLD_BOOT environment variable) boots every run from scratch
// instead — same results, historical setup cost. Once a warm run's
// fault has fully recovered and its state fingerprint matches the
// pathfinder's rung record, the remaining suite suffix is elided: the
// recorded tail deltas are spliced in place of re-execution, with
// results bit-identical either way. -noelide (or OSIRIS_NO_ELIDE)
// pins full suffix execution — the elision bit-identity oracle. Each
// policy row is followed by "warm plane:" and "elision:" lines
// reporting how its runs were served.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kernel"
	"repro/internal/seep"
)

func main() {
	var (
		policyName = flag.String("policy", "all", "policy: all, enhanced, extended, pessimistic, stateless or naive")
		modelName  = flag.String("model", "failstop", "fault model: failstop, edfi or ipcmix")
		samples    = flag.Int("samples", 4, "injection occurrences sampled per candidate site")
		maxRuns    = flag.Int("maxruns", 0, "cap on total runs per policy (0 = no cap)")
		seed       = flag.Uint64("seed", 42, "simulation seed")
		profile    = flag.Bool("profile", false, "print the fault-site profile and exit")
		faults     = flag.Int("faults", 1, "faults armed per boot; >= 2 selects the multi-fault cascade campaign")
		runs       = flag.Int("runs", 40, "boots per policy in the multi-fault campaign")
		workers    = flag.Int("workers", 0, "concurrent boots (0 = one per CPU, 1 = serial)")
		coldBoot   = flag.Bool("coldboot", false, "boot every run from scratch instead of forking a warm image")
		noElide    = flag.Bool("noelide", false, "execute every warm run's suite suffix in full instead of splicing the recorded pathfinder tail at fingerprinted convergence")
		snapCache  = flag.String("snapcache", "", "snapshot-ladder cache budget in bytes, with optional KiB/MiB/GiB suffix (empty: OSIRIS_SNAPSHOT_CACHE or built-in default; negative: boot-barrier snapshot only)")
		recordDir  = flag.String("record", "", "write a replayable JSON trace for every failed/degraded/inconsistent run into this directory")
		resumePath = flag.String("resume", "", "journal completed runs to this file and resume from it after a crash (single -policy campaigns only)")
		quiet      = flag.Bool("quiet", false, "suppress per-run detail (warm-plane stats, inconsistent seeds); tables only")
		gate       = flag.Bool("gate", true, "exit 1 when any run failed, crashed, or was audit-inconsistent; -gate=false always exits 0 for healthy tool runs (smoke tests measuring lossy campaigns)")
		ipcFaults  = flag.Bool("ipcfaults", false, "background transport faults at default rates (50 bp per class)")
		dropRate   = flag.Int("droprate", 0, "background message drop rate, basis points per transmission")
		dupRate    = flag.Int("duprate", 0, "background duplication rate, basis points")
		delayRate  = flag.Int("delayrate", 0, "background delay rate, basis points")
		reordRate  = flag.Int("reorderrate", 0, "background reorder rate, basis points")
		corrRate   = flag.Int("corruptrate", 0, "background payload-corruption rate, basis points")
		nodes      = flag.Int("nodes", 0, "compose N machines into a cluster and run the storm campaign (0 = classic single-machine campaign)")
		partRate   = flag.Int("partitionrate", 100, "cluster campaign: per-node chance of a one-slot partition window, basis points per slot")
		ipcSeed    = flag.Uint64("ipcseed", 0, "perturbation of the per-run transport fault stream")
		ipcTimeout = flag.Int64("ipctimeout", 0, "sender retransmission timeout in cycles (0 = default when faults are on)")
		ipcRetry   = flag.Int("ipcretry", 0, "retransmission budget per request (0 = kernel default)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if err := core.SnapshotCacheEnvError(); err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(2)
	}
	if *coldBoot {
		faultinject.SetColdBootDefault(true)
	}
	if *noElide {
		faultinject.SetNoElideDefault(true)
	}
	if *snapCache != "" {
		budget, err := core.ParseByteSize(*snapCache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultcampaign: -snapcache:", err)
			os.Exit(2)
		}
		faultinject.SetSnapshotCacheDefault(budget)
	}

	if err := validateBPFlags([]bpFlag{
		{"droprate", *dropRate}, {"duprate", *dupRate}, {"delayrate", *delayRate},
		{"reorderrate", *reordRate}, {"corruptrate", *corrRate}, {"partitionrate", *partRate},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(2)
	}

	ipc := faultinject.IPCOptions{
		Faults: kernel.IPCFaultConfig{
			DropBP: *dropRate, DupBP: *dupRate, DelayBP: *delayRate,
			ReorderBP: *reordRate, CorruptBP: *corrRate,
		},
		Seed:          *ipcSeed,
		TimeoutCycles: *ipcTimeout,
		RetryMax:      *ipcRetry,
	}
	if *ipcFaults && !ipc.Faults.Enabled() {
		ipc.Faults = kernel.IPCFaultConfig{DropBP: 50, DupBP: 50, DelayBP: 50, ReorderBP: 50, CorruptBP: 50}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultcampaign:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "faultcampaign:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if (*recordDir != "" || *resumePath != "") && (*nodes > 0 || *profile) {
		fmt.Fprintln(os.Stderr, "faultcampaign: -record/-resume apply to injection campaigns only (not -profile or -nodes)")
		os.Exit(2)
	}
	if *resumePath != "" && *policyName == "all" {
		fmt.Fprintln(os.Stderr, "faultcampaign: -resume requires a single -policy (a journal pins one campaign)")
		os.Exit(2)
	}

	var err error
	unhealthy := false
	if *nodes > 0 {
		err = runClusterCampaign(*nodes, *seed, *runs, *workers, ipc.Faults, *partRate)
	} else {
		unhealthy, err = run(campaignSpec{
			policyName: *policyName,
			modelName:  *modelName,
			samples:    *samples,
			maxRuns:    *maxRuns,
			seed:       *seed,
			profile:    *profile,
			faults:     *faults,
			runs:       *runs,
			workers:    *workers,
			ipc:        ipc,
			recordDir:  *recordDir,
			resumePath: *resumePath,
			quiet:      *quiet,
		})
	}
	if *memProfile != "" {
		if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(1)
	}
	if unhealthy && *gate {
		fmt.Fprintln(os.Stderr, "faultcampaign: campaign unhealthy (failed, crashed, or audit-inconsistent runs; see tables)")
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// campaignSpec bundles the classic-campaign flags.
type campaignSpec struct {
	policyName string
	modelName  string
	samples    int
	maxRuns    int
	seed       uint64
	profile    bool
	faults     int
	runs       int
	workers    int
	ipc        faultinject.IPCOptions
	recordDir  string
	resumePath string
	quiet      bool
}

// run executes the classic (single-machine) campaigns. It reports
// whether any run was unhealthy — failed, crashed, or
// audit-inconsistent — so main can gate the exit status on it.
func run(spec campaignSpec) (unhealthy bool, err error) {
	prof, err := faultinject.Profile(spec.seed)
	if err != nil {
		return false, err
	}
	if spec.profile {
		fmt.Printf("%-8s %-28s %8s %8s %9s\n", "server", "site", "total", "boot", "candidate")
		for _, sp := range prof {
			fmt.Printf("%-8s %-28s %8d %8d %9v\n", sp.Server, sp.Site, sp.Total, sp.Boot, sp.Candidate())
		}
		return false, nil
	}

	var model faultinject.Model
	switch spec.modelName {
	case "failstop":
		model = faultinject.FailStop
	case "edfi":
		model = faultinject.FullEDFI
	case "ipcmix":
		model = faultinject.IPCMix
	default:
		return false, fmt.Errorf("unknown model %q", spec.modelName)
	}

	var policies []seep.Policy
	switch spec.policyName {
	case "all":
		policies = []seep.Policy{seep.PolicyStateless, seep.PolicyNaive, seep.PolicyPessimistic, seep.PolicyEnhanced}
	default:
		p, perr := seep.ParsePolicy(spec.policyName)
		if perr != nil {
			return false, fmt.Errorf("unknown policy %q", spec.policyName)
		}
		policies = []seep.Policy{p}
	}

	if spec.recordDir != "" {
		if mkErr := os.MkdirAll(spec.recordDir, 0o755); mkErr != nil {
			return false, mkErr
		}
	}
	var recordErr error

	if spec.faults >= 2 {
		fmt.Printf("model: %v, %d faults per boot, %d candidate sites\n\n", model, spec.faults, countCandidates(prof))
		fmt.Printf("%-12s %8s %9s %8s %10s %8s %11s %8s %12s\n",
			"Recovery", "Pass", "Degraded", "Fail", "Shutdown", "Crash", "Consistent", "Runs", "Untriggered")
		for _, policy := range policies {
			cfg := faultinject.MultiCampaignConfig{
				Policy:  policy,
				Model:   model,
				Faults:  spec.faults,
				Runs:    spec.runs,
				Seed:    spec.seed,
				Workers: spec.workers,
				IPC:     spec.ipc,
			}
			var journal *faultinject.Journal
			if spec.resumePath != "" {
				hdr := faultinject.JournalHeader{
					Kind: faultinject.TraceMulti, Policy: policy, Model: model, Seed: spec.seed,
					Faults: spec.faults, Runs: spec.runs, IPC: spec.ipc,
					PlanFingerprint: faultinject.MultiPlanFingerprint(faultinject.PlanMultiCampaign(cfg, prof)),
				}
				var resumed int
				journal, resumed, err = faultinject.OpenJournal(spec.resumePath, hdr)
				if err != nil {
					return false, err
				}
				if resumed > 0 {
					fmt.Fprintf(os.Stderr, "faultcampaign: resuming, %d of %d runs journaled in %s\n", resumed, spec.runs, spec.resumePath)
				}
				cfg.Journal = journal
			}
			if spec.recordDir != "" {
				servings := make(map[int]string)
				cfg.OnServe = func(i int, decision string) { servings[i] = decision }
				cfg.OnResult = func(i int, rr faultinject.MultiRunResult) {
					if rr.Triggered == 0 || !runUnhealthy(rr.Outcome, rr.Consistent) {
						return
					}
					tr := faultinject.NewMultiTrace(policy, rr, spec.ipc)
					tr.Serving = servings[i]
					path := filepath.Join(spec.recordDir, faultinject.TraceFileName(policy, i))
					if werr := faultinject.WriteTraceFile(path, tr); werr != nil && recordErr == nil {
						recordErr = werr
					}
				}
			}
			res, stats := faultinject.RunMultiCampaignWithStats(cfg, prof)
			if journal != nil {
				if cerr := journal.Close(); cerr != nil && err == nil {
					err = fmt.Errorf("journal: %w", cerr)
				}
			}
			unhealthy = unhealthy || res.Counts[faultinject.OutcomeFail]+res.Counts[faultinject.OutcomeCrash] > 0 ||
				len(res.InconsistentSeeds) > 0
			fmt.Printf("%-12s %7.1f%% %8.1f%% %7.1f%% %9.1f%% %7.1f%% %10.1f%% %8d %12d\n",
				res.Policy,
				res.Percent(faultinject.OutcomePass),
				res.Percent(faultinject.OutcomeDegradedPass),
				res.Percent(faultinject.OutcomeFail),
				res.Percent(faultinject.OutcomeShutdown),
				res.Percent(faultinject.OutcomeCrash),
				res.ConsistentPercent(),
				res.Runs, res.Untriggered)
			if !spec.quiet {
				printPlaneStats(stats)
				printInconsistent(res.InconsistentSeeds)
			}
			if err != nil {
				return unhealthy, err
			}
		}
		if recordErr != nil {
			return unhealthy, fmt.Errorf("record: %w", recordErr)
		}
		return unhealthy, nil
	}

	fmt.Printf("model: %v, %d candidate sites\n\n", model, countCandidates(prof))
	fmt.Printf("%-12s %8s %8s %10s %8s %11s %8s %12s\n",
		"Recovery", "Pass", "Fail", "Shutdown", "Crash", "Consistent", "Runs", "Untriggered")
	for _, policy := range policies {
		cfg := faultinject.CampaignConfig{
			Policy:         policy,
			Model:          model,
			Seed:           spec.seed,
			SamplesPerSite: spec.samples,
			MaxRuns:        spec.maxRuns,
			Workers:        spec.workers,
			IPC:            spec.ipc,
		}
		var journal *faultinject.Journal
		if spec.resumePath != "" {
			hdr := faultinject.JournalHeader{
				Kind: faultinject.TraceSingle, Policy: policy, Model: model, Seed: spec.seed,
				SamplesPerSite: spec.samples, MaxRuns: spec.maxRuns, IPC: spec.ipc,
				PlanFingerprint: faultinject.PlanFingerprint(faultinject.PlanCampaign(cfg, prof)),
			}
			var resumed int
			journal, resumed, err = faultinject.OpenJournal(spec.resumePath, hdr)
			if err != nil {
				return false, err
			}
			if resumed > 0 {
				fmt.Fprintf(os.Stderr, "faultcampaign: resuming, %d runs journaled in %s\n", resumed, spec.resumePath)
			}
			cfg.Journal = journal
		}
		if spec.recordDir != "" {
			servings := make(map[int]string)
			cfg.OnServe = func(i int, decision string) { servings[i] = decision }
			cfg.OnResult = func(i int, rr faultinject.RunResult) {
				if !rr.Triggered || !runUnhealthy(rr.Outcome, rr.Consistent) {
					return
				}
				tr := faultinject.NewTrace(policy, rr, spec.ipc)
				tr.Serving = servings[i]
				path := filepath.Join(spec.recordDir, faultinject.TraceFileName(policy, i))
				if werr := faultinject.WriteTraceFile(path, tr); werr != nil && recordErr == nil {
					recordErr = werr
				}
			}
		}
		res, stats := faultinject.RunCampaignWithStats(cfg, prof)
		if journal != nil {
			if cerr := journal.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("journal: %w", cerr)
			}
		}
		unhealthy = unhealthy || res.Counts[faultinject.OutcomeFail]+res.Counts[faultinject.OutcomeCrash] > 0 ||
			len(res.InconsistentSeeds) > 0
		fmt.Printf("%-12s %7.1f%% %7.1f%% %9.1f%% %7.1f%% %10.1f%% %8d %12d\n",
			res.Policy,
			res.Percent(faultinject.OutcomePass),
			res.Percent(faultinject.OutcomeFail),
			res.Percent(faultinject.OutcomeShutdown),
			res.Percent(faultinject.OutcomeCrash),
			res.ConsistentPercent(),
			res.Runs, res.Untriggered)
		if !spec.quiet {
			printPlaneStats(stats)
			printInconsistent(res.InconsistentSeeds)
		}
		if err != nil {
			return unhealthy, err
		}
	}
	if recordErr != nil {
		return unhealthy, fmt.Errorf("record: %w", recordErr)
	}
	return unhealthy, nil
}

// runUnhealthy classifies one run for exit-status gating and trace
// recording: failed, crashed, degraded, or audit-inconsistent.
// (Degraded-pass runs are recorded as traces but do not fail the exit
// status: surviving by quarantine is the sequencer working as
// designed.)
func runUnhealthy(o faultinject.Outcome, consistent bool) bool {
	switch o {
	case faultinject.OutcomeFail, faultinject.OutcomeCrash, faultinject.OutcomeDegradedPass:
		return true
	}
	return !consistent
}

// printPlaneStats reports how the warm plane served a policy's runs:
// ladder forks resume from a mid-suite rung, boot forks from the
// post-install barrier, and cold boots replay everything (broken down
// by fallback reason). Outcomes are bit-identical either way.
func printPlaneStats(s faultinject.PlaneStats) {
	line := fmt.Sprintf("  warm plane: %d ladder forks, %d boot forks, %d cold boots",
		s.LadderForks, s.BootForks, s.ColdBoots)
	if len(s.Fallbacks) > 0 {
		line += " ("
		for i, r := range s.FallbackReasons() {
			if i > 0 {
				line += ", "
			}
			line += fmt.Sprintf("%s: %d", r, s.Fallbacks[r])
		}
		line += ")"
	}
	fmt.Println(line)
	if s.Elided == 0 && len(s.ElisionFallbacks) == 0 {
		return
	}
	line = fmt.Sprintf("  elision: %d tails elided", s.Elided)
	if len(s.ElisionFallbacks) > 0 {
		line += " ("
		for i, r := range s.ElisionFallbackReasons() {
			if i > 0 {
				line += ", "
			}
			line += fmt.Sprintf("%s: %d", r, s.ElisionFallbacks[r])
		}
		line += ")"
	}
	fmt.Println(line)
}

// printInconsistent lists the per-run seeds of audit-inconsistent runs;
// re-running the same campaign command narrowed to such a seed replays
// the run exactly.
func printInconsistent(seeds []uint64) {
	if len(seeds) == 0 {
		return
	}
	fmt.Printf("  inconsistent run seeds:")
	for _, s := range seeds {
		fmt.Printf(" %d", s)
	}
	fmt.Println()
}

func countCandidates(prof []faultinject.SiteProfile) int {
	n := 0
	for _, sp := range prof {
		if sp.Candidate() {
			n++
		}
	}
	return n
}
