// Command faultcampaign runs the paper's survivability experiment: a
// large-scale one-fault-per-boot injection campaign over the prototype
// test suite, classified as pass / fail / shutdown / crash (§VI-B).
// With -faults N (N >= 2) it instead runs the multi-fault cascade
// campaign: N faults armed per boot (independent, correlated with a
// prior recovery, or planted in the recovery path), with the extra
// degraded-pass class for runs that survived by quarantining a
// component.
//
// Usage:
//
//	faultcampaign [-policy all|enhanced|...] [-model failstop|edfi|ipcmix]
//	              [-samples N] [-maxruns N] [-seed N] [-profile]
//	              [-faults N] [-runs N] [-workers N] [-coldboot] [-snapcache BYTES]
//	              [-ipcfaults] [-droprate BP] [-duprate BP] [-delayrate BP]
//	              [-reorderrate BP] [-corruptrate BP] [-ipcseed N]
//	              [-ipctimeout CYCLES] [-ipcretry N]
//	              [-nodes N] [-partitionrate BP]
//	              [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// With -nodes N (N >= 1) the command instead runs the cluster storm
// campaign: N machines composed behind the load balancer, -runs
// independent seeded fault storms (whole-node crashes, randomized
// partition windows at -partitionrate basis points per slot, flaky
// links on every node), each checked for the cluster invariants —
// zero lost requests, cluster-wide audit consistency, goodput never
// fully dark. The -*rate flags set the background network rates.
// All basis-point rates must lie in [0, 10000].
//
// The -model ipcmix campaign arms one transport fault (drop, duplicate,
// delay, reorder or payload corruption of a component's next outgoing
// message) per boot. Independently, -ipcfaults / -*rate add background
// transport faults (basis points per transmission) to every run of any
// campaign; both force the end-to-end reliability layer on, and every
// run is audited for cross-server consistency — the Consistent column
// reports the share of runs with no invariant violation, and the seeds
// of inconsistent runs are printed for exact replay.
//
// Campaign boots are independent simulated machines and fan out across
// -workers threads; results are bit-identical for every worker count
// (-workers 1 is the historical serial path). Runs fork from the
// snapshot ladder of one warm pathfinder machine per policy: each armed
// run resumes from the deepest captured mid-suite rung before its
// trigger. -snapcache bounds the ladder's snapshot cache in bytes
// (negative: boot-barrier snapshot only; default from
// OSIRIS_SNAPSHOT_CACHE or 256 MiB), and -coldboot (or the
// OSIRIS_COLD_BOOT environment variable) boots every run from scratch
// instead — same results, historical setup cost. Each policy row is
// followed by a "warm plane:" line reporting how its runs were served.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/faultinject"
	"repro/internal/kernel"
	"repro/internal/seep"
)

func main() {
	var (
		policyName = flag.String("policy", "all", "policy: all, enhanced, extended, pessimistic, stateless or naive")
		modelName  = flag.String("model", "failstop", "fault model: failstop, edfi or ipcmix")
		samples    = flag.Int("samples", 4, "injection occurrences sampled per candidate site")
		maxRuns    = flag.Int("maxruns", 0, "cap on total runs per policy (0 = no cap)")
		seed       = flag.Uint64("seed", 42, "simulation seed")
		profile    = flag.Bool("profile", false, "print the fault-site profile and exit")
		faults     = flag.Int("faults", 1, "faults armed per boot; >= 2 selects the multi-fault cascade campaign")
		runs       = flag.Int("runs", 40, "boots per policy in the multi-fault campaign")
		workers    = flag.Int("workers", 0, "concurrent boots (0 = one per CPU, 1 = serial)")
		coldBoot   = flag.Bool("coldboot", false, "boot every run from scratch instead of forking a warm image")
		snapCache  = flag.Int64("snapcache", 0, "snapshot-ladder cache budget in bytes (0: OSIRIS_SNAPSHOT_CACHE or built-in default; negative: boot-barrier snapshot only)")
		ipcFaults  = flag.Bool("ipcfaults", false, "background transport faults at default rates (50 bp per class)")
		dropRate   = flag.Int("droprate", 0, "background message drop rate, basis points per transmission")
		dupRate    = flag.Int("duprate", 0, "background duplication rate, basis points")
		delayRate  = flag.Int("delayrate", 0, "background delay rate, basis points")
		reordRate  = flag.Int("reorderrate", 0, "background reorder rate, basis points")
		corrRate   = flag.Int("corruptrate", 0, "background payload-corruption rate, basis points")
		nodes      = flag.Int("nodes", 0, "compose N machines into a cluster and run the storm campaign (0 = classic single-machine campaign)")
		partRate   = flag.Int("partitionrate", 100, "cluster campaign: per-node chance of a one-slot partition window, basis points per slot")
		ipcSeed    = flag.Uint64("ipcseed", 0, "perturbation of the per-run transport fault stream")
		ipcTimeout = flag.Int64("ipctimeout", 0, "sender retransmission timeout in cycles (0 = default when faults are on)")
		ipcRetry   = flag.Int("ipcretry", 0, "retransmission budget per request (0 = kernel default)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *coldBoot {
		faultinject.SetColdBootDefault(true)
	}
	if *snapCache != 0 {
		faultinject.SetSnapshotCacheDefault(*snapCache)
	}

	if err := validateBPFlags([]bpFlag{
		{"droprate", *dropRate}, {"duprate", *dupRate}, {"delayrate", *delayRate},
		{"reorderrate", *reordRate}, {"corruptrate", *corrRate}, {"partitionrate", *partRate},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(2)
	}

	ipc := faultinject.IPCOptions{
		Faults: kernel.IPCFaultConfig{
			DropBP: *dropRate, DupBP: *dupRate, DelayBP: *delayRate,
			ReorderBP: *reordRate, CorruptBP: *corrRate,
		},
		Seed:          *ipcSeed,
		TimeoutCycles: *ipcTimeout,
		RetryMax:      *ipcRetry,
	}
	if *ipcFaults && !ipc.Faults.Enabled() {
		ipc.Faults = kernel.IPCFaultConfig{DropBP: 50, DupBP: 50, DelayBP: 50, ReorderBP: 50, CorruptBP: 50}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultcampaign:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "faultcampaign:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	var err error
	if *nodes > 0 {
		err = runClusterCampaign(*nodes, *seed, *runs, *workers, ipc.Faults, *partRate)
	} else {
		err = run(*policyName, *modelName, *samples, *maxRuns, *seed, *profile, *faults, *runs, *workers, ipc)
	}
	if *memProfile != "" {
		if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func run(policyName, modelName string, samples, maxRuns int, seed uint64, profileOnly bool, faults, runs, workers int, ipc faultinject.IPCOptions) error {
	prof, err := faultinject.Profile(seed)
	if err != nil {
		return err
	}
	if profileOnly {
		fmt.Printf("%-8s %-28s %8s %8s %9s\n", "server", "site", "total", "boot", "candidate")
		for _, sp := range prof {
			fmt.Printf("%-8s %-28s %8d %8d %9v\n", sp.Server, sp.Site, sp.Total, sp.Boot, sp.Candidate())
		}
		return nil
	}

	var model faultinject.Model
	switch modelName {
	case "failstop":
		model = faultinject.FailStop
	case "edfi":
		model = faultinject.FullEDFI
	case "ipcmix":
		model = faultinject.IPCMix
	default:
		return fmt.Errorf("unknown model %q", modelName)
	}

	var policies []seep.Policy
	switch policyName {
	case "all":
		policies = []seep.Policy{seep.PolicyStateless, seep.PolicyNaive, seep.PolicyPessimistic, seep.PolicyEnhanced}
	case "enhanced":
		policies = []seep.Policy{seep.PolicyEnhanced}
	case "pessimistic":
		policies = []seep.Policy{seep.PolicyPessimistic}
	case "stateless":
		policies = []seep.Policy{seep.PolicyStateless}
	case "naive":
		policies = []seep.Policy{seep.PolicyNaive}
	case "extended":
		policies = []seep.Policy{seep.PolicyExtended}
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}

	if faults >= 2 {
		fmt.Printf("model: %v, %d faults per boot, %d candidate sites\n\n", model, faults, countCandidates(prof))
		fmt.Printf("%-12s %8s %9s %8s %10s %8s %11s %8s %12s\n",
			"Recovery", "Pass", "Degraded", "Fail", "Shutdown", "Crash", "Consistent", "Runs", "Untriggered")
		for _, policy := range policies {
			res, stats := faultinject.RunMultiCampaignWithStats(faultinject.MultiCampaignConfig{
				Policy:  policy,
				Model:   model,
				Faults:  faults,
				Runs:    runs,
				Seed:    seed,
				Workers: workers,
				IPC:     ipc,
			}, prof)
			fmt.Printf("%-12s %7.1f%% %8.1f%% %7.1f%% %9.1f%% %7.1f%% %10.1f%% %8d %12d\n",
				res.Policy,
				res.Percent(faultinject.OutcomePass),
				res.Percent(faultinject.OutcomeDegradedPass),
				res.Percent(faultinject.OutcomeFail),
				res.Percent(faultinject.OutcomeShutdown),
				res.Percent(faultinject.OutcomeCrash),
				res.ConsistentPercent(),
				res.Runs, res.Untriggered)
			printPlaneStats(stats)
			printInconsistent(res.InconsistentSeeds)
		}
		return nil
	}

	fmt.Printf("model: %v, %d candidate sites\n\n", model, countCandidates(prof))
	fmt.Printf("%-12s %8s %8s %10s %8s %11s %8s %12s\n",
		"Recovery", "Pass", "Fail", "Shutdown", "Crash", "Consistent", "Runs", "Untriggered")
	for _, policy := range policies {
		res, stats := faultinject.RunCampaignWithStats(faultinject.CampaignConfig{
			Policy:         policy,
			Model:          model,
			Seed:           seed,
			SamplesPerSite: samples,
			MaxRuns:        maxRuns,
			Workers:        workers,
			IPC:            ipc,
		}, prof)
		fmt.Printf("%-12s %7.1f%% %7.1f%% %9.1f%% %7.1f%% %10.1f%% %8d %12d\n",
			res.Policy,
			res.Percent(faultinject.OutcomePass),
			res.Percent(faultinject.OutcomeFail),
			res.Percent(faultinject.OutcomeShutdown),
			res.Percent(faultinject.OutcomeCrash),
			res.ConsistentPercent(),
			res.Runs, res.Untriggered)
		printPlaneStats(stats)
		printInconsistent(res.InconsistentSeeds)
	}
	return nil
}

// printPlaneStats reports how the warm plane served a policy's runs:
// ladder forks resume from a mid-suite rung, boot forks from the
// post-install barrier, and cold boots replay everything (broken down
// by fallback reason). Outcomes are bit-identical either way.
func printPlaneStats(s faultinject.PlaneStats) {
	line := fmt.Sprintf("  warm plane: %d ladder forks, %d boot forks, %d cold boots",
		s.LadderForks, s.BootForks, s.ColdBoots)
	if len(s.Fallbacks) > 0 {
		line += " ("
		for i, r := range s.FallbackReasons() {
			if i > 0 {
				line += ", "
			}
			line += fmt.Sprintf("%s: %d", r, s.Fallbacks[r])
		}
		line += ")"
	}
	fmt.Println(line)
}

// printInconsistent lists the per-run seeds of audit-inconsistent runs;
// re-running the same campaign command narrowed to such a seed replays
// the run exactly.
func printInconsistent(seeds []uint64) {
	if len(seeds) == 0 {
		return
	}
	fmt.Printf("  inconsistent run seeds:")
	for _, s := range seeds {
		fmt.Printf(" %d", s)
	}
	fmt.Println()
}

func countCandidates(prof []faultinject.SiteProfile) int {
	n := 0
	for _, sp := range prof {
		if sp.Candidate() {
			n++
		}
	}
	return n
}
