package main

import "fmt"

// Basis-point rate flags are user input, and a typo'd rate silently
// warps a whole campaign (negative rates underflow the fate ladder,
// rates past 10000 make every roll hit). Validate them all up front
// and fail with the flag's name rather than a misbehaving run.

// bpFlag pairs a rate flag's name with its parsed value.
type bpFlag struct {
	name  string
	value int
}

// validateBP rejects a basis-point rate outside [0, 10000].
func validateBP(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s %d: rate is negative; basis points must be in [0, 10000]", name, v)
	}
	if v > 10000 {
		return fmt.Errorf("-%s %d: rate exceeds 10000 basis points (100%%); must be in [0, 10000]", name, v)
	}
	return nil
}

// validateBPFlags checks every rate flag, reporting the first offender
// by name.
func validateBPFlags(flags []bpFlag) error {
	for _, f := range flags {
		if err := validateBP(f.name, f.value); err != nil {
			return err
		}
	}
	return nil
}
