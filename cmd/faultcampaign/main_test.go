package main

import (
	"strings"
	"testing"
)

func TestValidateBPRejectsNegative(t *testing.T) {
	err := validateBP("droprate", -1)
	if err == nil {
		t.Fatal("negative rate accepted")
	}
	for _, want := range []string{"-droprate", "-1", "negative", "[0, 10000]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestValidateBPRejectsOverFullScale(t *testing.T) {
	err := validateBP("corruptrate", 10001)
	if err == nil {
		t.Fatal("rate above 10000 accepted")
	}
	for _, want := range []string{"-corruptrate", "10001", "10000"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestValidateBPAcceptsBounds(t *testing.T) {
	for _, v := range []int{0, 1, 50, 10000} {
		if err := validateBP("duprate", v); err != nil {
			t.Errorf("validateBP(%d) = %v, want nil", v, err)
		}
	}
}

func TestValidateBPFlagsNamesTheOffender(t *testing.T) {
	flags := []bpFlag{
		{"droprate", 50},
		{"duprate", 0},
		{"delayrate", 10000},
		{"reorderrate", 20000},
		{"corruptrate", -3},
		{"partitionrate", 100},
	}
	err := validateBPFlags(flags)
	if err == nil {
		t.Fatal("out-of-range flag set accepted")
	}
	if !strings.Contains(err.Error(), "-reorderrate") {
		t.Errorf("error %q should name the first offending flag -reorderrate", err)
	}
	if err := validateBPFlags(flags[:3]); err != nil {
		t.Errorf("all-valid prefix rejected: %v", err)
	}
}
