package main

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// The cluster campaign: -nodes N composes N machines behind the
// load balancer and replays `-runs` independent seeded fault storms
// (node crashes, randomized partition windows, flaky links on every
// node), checking the cluster-level invariants on each — zero lost
// requests, cluster-wide audit consistency, goodput never fully dark.

const (
	// clusterRequests is the per-storm request count.
	clusterRequests = 1000
	// clusterHorizon bounds each storm schedule: the arrival window of
	// clusterRequests requests at the default interarrival gap, plus
	// the request deadline.
	clusterHorizon sim.Cycles = 12_000_000
	// clusterFlakyBP is the per-class flaky-link extra applied to every
	// node for the whole storm.
	clusterFlakyBP = 100
)

func runClusterCampaign(nodes int, seed uint64, runs, workers int, net kernel.IPCFaultConfig, partitionBP int) error {
	if nodes < 1 {
		return fmt.Errorf("-nodes %d: need at least 1", nodes)
	}
	if runs < 1 {
		runs = 1
	}
	fmt.Printf("cluster campaign: %d nodes, %d storm runs, seed %d (partitions %d bp/slot, flaky links +%d bp/class)\n\n",
		nodes, runs, seed, partitionBP, clusterFlakyBP)

	var (
		clean, lostRuns, inconsistentRuns, darkRuns int
		succeeded, degraded, timedOut               int
		retries, failovers, reboots                 int
		p50s, p99s                                  []uint64
		worstP999                                   uint64
		badSeeds                                    []uint64
	)
	for i := 0; i < runs; i++ {
		runSeed := seed + uint64(i)
		storm, err := cluster.RandomStorm(cluster.RandomStormConfig{
			Nodes:       nodes,
			Seed:        runSeed,
			Horizon:     clusterHorizon,
			NodeCrashes: nodes,
			PartitionBP: partitionBP,
			FlakyBP:     clusterFlakyBP,
		})
		if err != nil {
			return err
		}
		res, err := cluster.Run(cluster.Config{
			Nodes:    nodes,
			Seed:     runSeed,
			Workers:  workers,
			Requests: clusterRequests,
			Net:      net,
			Storm:    storm,
		})
		if err != nil {
			return err
		}

		succeeded += res.Succeeded
		degraded += res.Degraded
		timedOut += res.TimedOut
		retries += res.Retries
		failovers += res.Failovers
		for _, ns := range res.NodeStats {
			reboots += ns.Boots - 1
		}
		p50s = append(p50s, uint64(res.P50))
		p99s = append(p99s, uint64(res.P99))
		if uint64(res.P999) > worstP999 {
			worstP999 = uint64(res.P999)
		}
		dark := false
		for _, g := range res.Goodput {
			if g == 0 {
				dark = true
			}
		}
		if dark {
			darkRuns++
		}
		bad := false
		if res.Lost > 0 {
			lostRuns++
			bad = true
		}
		if !res.Consistent {
			inconsistentRuns++
			bad = true
		}
		if bad {
			badSeeds = append(badSeeds, runSeed)
		} else {
			clean++
		}
	}

	total := runs * clusterRequests
	pc := func(n int) float64 { return 100 * float64(n) / float64(total) }
	fmt.Printf("runs %d: clean %d, with-lost %d, inconsistent %d, goodput-dark-window %d\n",
		runs, clean, lostRuns, inconsistentRuns, darkRuns)
	fmt.Printf("requests %d: success %.1f%%, degraded %.1f%%, timed-out %.1f%%\n",
		total, pc(succeeded), pc(degraded), pc(timedOut))
	fmt.Printf("latency (cycles): median-of-runs p50 %d, p99 %d; worst p999 %d\n",
		median(p50s), median(p99s), worstP999)
	fmt.Printf("retries %d, failovers %d, node reboots %d\n", retries, failovers, reboots)
	printInconsistent(badSeeds)
	return nil
}

// median of a slice (0 when empty); sorts a copy.
func median(xs []uint64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
