// Command benchtables regenerates the paper's evaluation tables and
// figures on the simulated OSIRIS system.
//
// Usage:
//
//	benchtables [-scale quick|full] [-seed N] [-only 1,2,3,4,5,6,f3,mf]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
	"repro/internal/faultinject"
)

func main() {
	var (
		scaleName = flag.String("scale", "quick", "evaluation scale: quick or full")
		seed      = flag.Uint64("seed", 42, "simulation seed")
		only      = flag.String("only", "", "comma-separated subset: 1,2,3,4,5,6,f3,mf,ablation (default all)")
	)
	flag.Parse()
	if err := run(*scaleName, *seed, *only); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(scaleName string, seed uint64, only string) error {
	var sc eval.Scale
	switch scaleName {
	case "quick":
		sc = eval.QuickScale()
	case "full":
		sc = eval.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	sc.Seed = seed

	valid := map[string]bool{
		"1": true, "2": true, "3": true, "4": true, "5": true, "6": true,
		"f3": true, "mf": true, "ablation": true,
	}
	if only != "" {
		for _, k := range strings.Split(only, ",") {
			if k = strings.TrimSpace(k); !valid[k] {
				return fmt.Errorf("unknown table %q (valid: 1,2,3,4,5,6,f3,mf,ablation)", k)
			}
		}
	}
	want := func(key string) bool {
		if only == "" {
			return true
		}
		for _, k := range strings.Split(only, ",") {
			if strings.TrimSpace(k) == key {
				return true
			}
		}
		return false
	}

	if want("1") {
		t, err := eval.RunTable1(sc)
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		fmt.Println(t.Render())
	}
	if want("2") {
		t, err := eval.RunSurvivability(faultinject.FailStop, sc)
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		fmt.Println(t.Render())
	}
	if want("3") {
		t, err := eval.RunSurvivability(faultinject.FullEDFI, sc)
		if err != nil {
			return fmt.Errorf("table 3: %w", err)
		}
		fmt.Println(t.Render())
	}
	if want("4") {
		fmt.Println(eval.RunTable4(sc).Render())
	}
	if want("5") {
		fmt.Println(eval.RunTable5(sc).Render())
	}
	if want("6") {
		t, err := eval.RunTable6(sc)
		if err != nil {
			return fmt.Errorf("table 6: %w", err)
		}
		fmt.Println(t.Render())
	}
	if want("f3") {
		fmt.Println(eval.RunFigure3(sc, nil).Render())
	}
	if want("mf") {
		t, err := eval.RunMultiFault(sc)
		if err != nil {
			return fmt.Errorf("multi-fault table: %w", err)
		}
		fmt.Println(t.Render())
	}
	if want("ablation") {
		fmt.Println(eval.RunAblationCheckpointing(sc).Render())
	}
	return nil
}
