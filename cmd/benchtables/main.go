// Command benchtables regenerates the paper's evaluation tables and
// figures on the simulated OSIRIS system.
//
// Usage:
//
//	benchtables [-scale quick|full] [-seed N] [-only 1,2,3,4,5,6,f3,mf,ablation,ipc,ckpt,cluster,warmboot,elide]
//	            [-workers N] [-coldboot] [-noelide] [-snapcache SIZE] [-json out.json]
//	            [-list] [-cpuprofile out.pprof] [-memprofile out.pprof]
//
// Independent simulated machines fan out across -workers threads; the
// numbers are bit-identical for every worker count (-workers 1 is the
// historical serial path). Campaign runs fork from the snapshot ladder
// of a warm pathfinder machine by default; -snapcache bounds the
// ladder's snapshot cache in bytes (negative: boot-barrier snapshot
// only), and -coldboot (or OSIRIS_COLD_BOOT=1) boots every run from
// scratch instead — same tables, historical setup cost. Warm-served
// runs splice the pathfinder's recorded suffix when their state
// fingerprint matches a ladder rung; -noelide (or OSIRIS_NO_ELIDE=1)
// pins every run to full suffix execution — same tables, the elision
// bit-identity oracle. -list prints
// the section keys accepted by -only and exits. -json writes a
// machine-readable report with per-section wall-clock and process
// allocation statistics alongside the table data.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faultinject"
	"repro/internal/parallel"
)

func main() {
	var (
		scaleName  = flag.String("scale", "quick", "evaluation scale: quick or full")
		seed       = flag.Uint64("seed", 42, "simulation seed")
		only       = flag.String("only", "", "comma-separated subset: 1,2,3,4,5,6,f3,mf,ablation,ipc,ckpt,cluster,warmboot,elide (default all)")
		workers    = flag.Int("workers", 0, "concurrent simulated machines (0 = one per CPU, 1 = serial)")
		coldBoot   = flag.Bool("coldboot", false, "boot every campaign run from scratch instead of forking a warm image")
		noElide    = flag.Bool("noelide", false, "execute every run's suffix in full instead of splicing the pathfinder tail on fingerprint match (the elision bit-identity oracle)")
		snapCache  = flag.String("snapcache", "", "snapshot-ladder cache budget in bytes, with optional KiB/MiB/GiB suffix (empty: OSIRIS_SNAPSHOT_CACHE or built-in default; negative: boot-barrier snapshot only)")
		list       = flag.Bool("list", false, "print the section keys accepted by -only and exit")
		jsonPath   = flag.String("json", "", "write a machine-readable report to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *list {
		for _, s := range sectionInfo {
			fmt.Printf("%-10s %-32s %s\n", s.key, s.name, s.desc)
		}
		return
	}
	if err := core.SnapshotCacheEnvError(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	}
	if *coldBoot {
		faultinject.SetColdBootDefault(true)
	}
	if *noElide {
		faultinject.SetNoElideDefault(true)
	}
	if *snapCache != "" {
		budget, err := core.ParseByteSize(*snapCache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables: -snapcache:", err)
			os.Exit(2)
		}
		faultinject.SetSnapshotCacheDefault(budget)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	err := run(*scaleName, *seed, *only, *workers, *jsonPath)
	if *memProfile != "" {
		if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// sectionInfo lists the report sections in emission order: the -only
// key, the JSON section name, and a one-line description for -list.
var sectionInfo = []struct {
	key, name, desc string
}{
	{"1", "table1_coverage", "Table I: recovery coverage per policy"},
	{"2", "table2_survivability_failstop", "Table II: survivability under fail-stop faults"},
	{"3", "table3_survivability_edfi", "Table III: survivability under the full EDFI fault mix"},
	{"4", "table4_perf_vs_monolithic", "Table IV: benchmark scores vs monolithic baseline"},
	{"5", "table5_instrumentation", "Table V: instrumentation slowdown per policy"},
	{"6", "table6_memory", "Table VI: state and undo-log memory overhead"},
	{"f3", "figure3_disruption", "Figure 3: service disruption during recovery"},
	{"mf", "multifault_cascade", "Multi-fault cascade survivability (beyond the paper)"},
	{"ablation", "ablation_checkpointing", "Checkpointing ablation: legacy vs incremental"},
	{"ipc", "ipc_reliability", "Survivability vs background transport fault rate"},
	{"ckpt", "checkpointing_incremental", "Incremental checkpointing micro-table"},
	{"cluster", "cluster_availability", "Multi-node cluster availability and failover"},
	{"warmboot", "warmboot_fork", "Warm-boot fork plane and snapshot ladder"},
	{"elide", "tail_elision", "Tail elision: campaign throughput with the suffix spliced vs executed"},
}

// section is one table/figure of the JSON report.
type section struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Data   any     `json:"data"`
}

// report is the machine-readable output of one benchtables invocation.
type report struct {
	Scale       string    `json:"scale"`
	Seed        uint64    `json:"seed"`
	Workers     int       `json:"workers"`
	GoMaxProcs  int       `json:"gomaxprocs"`
	Sections    []section `json:"sections"`
	TotalWallMS float64   `json:"total_wall_ms"`
	// Process-wide allocation statistics over the whole run, for
	// tracking the hot-path pooling work.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	NumGC      uint32 `json:"num_gc"`
}

func run(scaleName string, seed uint64, only string, workers int, jsonPath string) error {
	var sc eval.Scale
	switch scaleName {
	case "quick":
		sc = eval.QuickScale()
	case "full":
		sc = eval.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	sc.Seed = seed
	sc.Workers = workers

	valid := make(map[string]bool, len(sectionInfo))
	keys := make([]string, 0, len(sectionInfo))
	for _, s := range sectionInfo {
		valid[s.key] = true
		keys = append(keys, s.key)
	}
	if only != "" {
		for _, k := range strings.Split(only, ",") {
			if k = strings.TrimSpace(k); !valid[k] {
				return fmt.Errorf("unknown table %q (valid: %s; see -list)", k, strings.Join(keys, ","))
			}
		}
	}
	want := func(key string) bool {
		if only == "" {
			return true
		}
		for _, k := range strings.Split(only, ",") {
			if strings.TrimSpace(k) == key {
				return true
			}
		}
		return false
	}

	rep := report{
		Scale:      scaleName,
		Seed:       seed,
		Workers:    parallel.Resolve(workers),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	type renderer interface{ Render() string }
	emit := func(name string, data renderer, elapsed time.Duration) {
		fmt.Println(data.Render())
		rep.Sections = append(rep.Sections, section{
			Name:   name,
			WallMS: float64(elapsed.Microseconds()) / 1000,
			Data:   data,
		})
	}

	if want("1") {
		t0 := time.Now()
		t, err := eval.RunTable1(sc)
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		emit("table1_coverage", t, time.Since(t0))
	}
	if want("2") {
		t0 := time.Now()
		t, err := eval.RunSurvivability(faultinject.FailStop, sc)
		if err != nil {
			return fmt.Errorf("table 2: %w", err)
		}
		emit("table2_survivability_failstop", t, time.Since(t0))
	}
	if want("3") {
		t0 := time.Now()
		t, err := eval.RunSurvivability(faultinject.FullEDFI, sc)
		if err != nil {
			return fmt.Errorf("table 3: %w", err)
		}
		emit("table3_survivability_edfi", t, time.Since(t0))
	}
	if want("4") {
		t0 := time.Now()
		emit("table4_perf_vs_monolithic", eval.RunTable4(sc), time.Since(t0))
	}
	if want("5") {
		t0 := time.Now()
		emit("table5_instrumentation", eval.RunTable5(sc), time.Since(t0))
	}
	if want("6") {
		t0 := time.Now()
		t, err := eval.RunTable6(sc)
		if err != nil {
			return fmt.Errorf("table 6: %w", err)
		}
		emit("table6_memory", t, time.Since(t0))
	}
	if want("f3") {
		t0 := time.Now()
		emit("figure3_disruption", eval.RunFigure3(sc, nil), time.Since(t0))
	}
	if want("mf") {
		t0 := time.Now()
		t, err := eval.RunMultiFault(sc)
		if err != nil {
			return fmt.Errorf("multi-fault table: %w", err)
		}
		emit("multifault_cascade", t, time.Since(t0))
	}
	if want("ablation") {
		t0 := time.Now()
		emit("ablation_checkpointing", eval.RunAblationCheckpointing(sc), time.Since(t0))
	}
	if want("ipc") {
		t0 := time.Now()
		emit("ipc_reliability", eval.RunIPCSweep(sc), time.Since(t0))
	}
	if want("ckpt") {
		t0 := time.Now()
		emit("checkpointing_incremental", eval.RunCheckpointing(sc), time.Since(t0))
	}
	if want("cluster") {
		t0 := time.Now()
		t, err := eval.RunCluster(sc)
		if err != nil {
			return fmt.Errorf("cluster table: %w", err)
		}
		emit("cluster_availability", t, time.Since(t0))
	}
	if want("warmboot") {
		t0 := time.Now()
		t, err := eval.RunWarmBoot(sc)
		if err != nil {
			return fmt.Errorf("warm-boot table: %w", err)
		}
		emit("warmboot_fork", t, time.Since(t0))
	}
	if want("elide") {
		t0 := time.Now()
		t, err := eval.RunTailElision(sc)
		if err != nil {
			return fmt.Errorf("tail-elision table: %w", err)
		}
		emit("tail_elision", t, time.Since(t0))
	}

	if jsonPath != "" {
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		rep.TotalWallMS = float64(time.Since(start).Microseconds()) / 1000
		rep.AllocBytes = msAfter.TotalAlloc - msBefore.TotalAlloc
		rep.Mallocs = msAfter.Mallocs - msBefore.Mallocs
		rep.NumGC = msAfter.NumGC - msBefore.NumGC
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("marshal report: %w", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d sections, %.0f ms)\n", jsonPath, len(rep.Sections), rep.TotalWallMS)
	}
	return nil
}
