// Command osiris boots the simulated compartmentalized OS and runs the
// prototype test suite (default) or an inline shell script, reporting
// the outcome and per-component recovery statistics.
//
// Usage:
//
//	osiris [-policy enhanced|pessimistic|stateless|naive] [-seed N]
//	       [-heartbeats] [-stats] [-inject server.site[:occurrence]]
//	       [command args...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/seep"
	"repro/internal/sim"
	"repro/internal/testsuite"
	"repro/internal/usr"
)

const runLimit sim.Cycles = 8_000_000_000

func main() {
	var (
		policyName = flag.String("policy", "enhanced", "recovery policy: enhanced, extended, pessimistic, stateless or naive")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		heartbeats = flag.Bool("heartbeats", true, "enable Recovery Server heartbeats")
		stats      = flag.Bool("stats", false, "print per-component recovery statistics")
		inject     = flag.String("inject", "", "inject a fail-stop fault: site[:occurrence], e.g. pm.fork.entry:2")
		trace      = flag.Bool("trace", false, "print kernel IPC/crash events to stderr")
	)
	flag.Parse()
	if err := run(*policyName, *seed, *heartbeats, *stats, *trace, *inject, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "osiris:", err)
		os.Exit(1)
	}
}

func parsePolicy(name string) (seep.Policy, error) {
	switch name {
	case "enhanced":
		return seep.PolicyEnhanced, nil
	case "pessimistic":
		return seep.PolicyPessimistic, nil
	case "stateless":
		return seep.PolicyStateless, nil
	case "naive":
		return seep.PolicyNaive, nil
	case "extended":
		return seep.PolicyExtended, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", name)
	}
}

func run(policyName string, seed uint64, heartbeats, stats, trace bool, inject string, args []string) error {
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}

	reg := usr.NewRegistry()
	testsuite.Register(reg)

	var report testsuite.Report
	var initProg usr.Program
	if len(args) == 0 {
		initProg = testsuite.RunnerInit(&report)
	} else {
		command := strings.Join(args, " ")
		initProg = func(p *usr.Proc) int {
			if errno := usr.InstallPrograms(p); errno != kernel.OK {
				return 1
			}
			p.Mkdir("/tmp")
			return usr.Shell(p, []string{command})
		}
	}

	sys := boot.Boot(boot.Options{
		Config:     core.Config{Policy: policy, Seed: seed},
		Registry:   reg,
		Heartbeats: heartbeats,
	}, initProg)

	if trace {
		sys.Kernel().SetTracer(func(format string, fmtArgs ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", fmtArgs...)
		})
	}

	if inject != "" {
		site, occurrence := inject, 1
		if i := strings.LastIndex(inject, ":"); i >= 0 {
			site = inject[:i]
			if n, err := strconv.Atoi(inject[i+1:]); err == nil {
				occurrence = n
			}
		}
		remaining := occurrence
		sys.Kernel().SetPointHook(func(_ kernel.Endpoint, _, s string) {
			if s != site {
				return
			}
			remaining--
			if remaining == 0 {
				panic("cli: injected fail-stop fault at " + site)
			}
		})
	}

	res := sys.Run(runLimit)

	fmt.Printf("outcome: %v", res.Outcome)
	if res.Reason != "" {
		fmt.Printf(" (%s)", res.Reason)
	}
	fmt.Printf("\nvirtual time: %d cycles\nrecoveries: %d\n", res.Cycles, sys.Recoveries)
	if res.Outcome == kernel.OutcomeShutdown && sys.ShutdownDump != "" {
		fmt.Println("\npost-mortem dump:")
		fmt.Print(sys.ShutdownDump)
	}
	if len(args) == 0 {
		fmt.Printf("suite: %d ran, %d passed, %d failed\n", report.Ran, report.Passed, report.Failed)
		if report.Failed > 0 {
			fmt.Printf("failed tests: %s\n", strings.Join(report.FailedNames, " "))
		}
	}
	if stats {
		fmt.Println("\nper-component statistics:")
		fmt.Printf("%-8s %12s %12s %12s %12s %11s\n",
			"server", "coverage", "base-bytes", "clone-bytes", "undo-max", "recoveries")
		for _, cs := range sys.Stats() {
			fmt.Printf("%-8s %11.1f%% %12d %12d %12d %11d\n",
				cs.Name, 100*cs.Coverage.BlockCoverage(),
				cs.BaseBytes, cs.CloneBytes, cs.MaxUndoLogBytes, cs.Recoveries)
		}
	}
	return nil
}
