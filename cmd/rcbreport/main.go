// Command rcbreport computes the Reliable Computing Base accounting of
// §VI-A: lines of code per package, classified into RCB (code that must
// be trusted to be fault-free: checkpointing, restartability, window
// management, initialization, message-passing substrate) versus
// recoverable component code. The paper reports an RCB of 12.5% of the
// prototype; this tool reports the equivalent split for this
// reproduction.
//
// Usage:
//
//	rcbreport [-root DIR] [-tests]
//	rcbreport -replay TRACE.json|DIR
//
// With -replay, the tool instead re-executes recorded fault traces
// (written by `faultcampaign -record`): every run is a pure function of
// the provenance stored in its trace, so the replay must reproduce the
// recorded outcome bit-identically. One PASS/MISMATCH line is printed
// per trace; any mismatch (a non-reproducible build) exits 1.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/faultinject"
)

// rcbPackages are the trusted packages (relative to the module root).
var rcbPackages = map[string]bool{
	"internal/sim":      true, // deterministic substrate
	"internal/memlog":   true, // checkpointing / undo log
	"internal/seep":     true, // recovery-window management
	"internal/kernel":   true, // message-passing substrate
	"internal/cothread": true, // thread library state fixup
	"internal/core":     true, // restart/rollback/reconciliation engine
	"internal/boot":     true, // initialization
}

func main() {
	var (
		root     = flag.String("root", ".", "module root directory")
		withTest = flag.Bool("tests", false, "include _test.go files")
		replay   = flag.String("replay", "", "replay recorded fault traces (a trace file or a directory of *.json) and diff against the recorded outcomes")
	)
	flag.Parse()
	if *replay != "" {
		mismatches, err := runReplay(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcbreport:", err)
			os.Exit(1)
		}
		if mismatches > 0 {
			fmt.Fprintf(os.Stderr, "rcbreport: %d trace(s) did not replay bit-identically\n", mismatches)
			os.Exit(1)
		}
		return
	}
	if err := run(*root, *withTest); err != nil {
		fmt.Fprintln(os.Stderr, "rcbreport:", err)
		os.Exit(1)
	}
}

// runReplay re-executes every trace under path and reports how many
// diverged from their recording.
func runReplay(path string) (mismatches int, err error) {
	files, err := faultinject.ListTraceFiles(path)
	if err != nil {
		return 0, err
	}
	for _, file := range files {
		t, err := faultinject.ReadTraceFile(file)
		if err != nil {
			return mismatches, err
		}
		replayed, err := t.Replay()
		if err != nil {
			return mismatches, fmt.Errorf("%s: %w", file, err)
		}
		// Serving is provenance (how the campaign served the recorded
		// run: ladder rung plus elision decision or fallback); replay
		// always cold-boots the same result, so it is reported, not
		// compared.
		serving := ""
		if t.Serving != "" {
			serving = ", served " + t.Serving
		}
		if ok, diff := t.Matches(replayed); ok {
			fmt.Printf("PASS     %s (%s %s seed %d: %v%s)\n", file, t.Kind, t.Policy, t.Seed, t.Outcome.Outcome, serving)
		} else {
			mismatches++
			fmt.Printf("MISMATCH %s (%s %s seed %d%s): %s\n", file, t.Kind, t.Policy, t.Seed, serving, diff)
		}
	}
	fmt.Printf("replayed %d trace(s), %d mismatch(es)\n", len(files), mismatches)
	return mismatches, nil
}

type pkgCount struct {
	pkg   string
	lines int
	rcb   bool
}

func run(root string, withTests bool) error {
	counts := make(map[string]*pkgCount)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !withTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = "(root)"
		}
		n, err := countCodeLines(path)
		if err != nil {
			return err
		}
		pc := counts[rel]
		if pc == nil {
			pc = &pkgCount{pkg: rel, rcb: rcbPackages[rel]}
			counts[rel] = pc
		}
		pc.lines += n
		return nil
	})
	if err != nil {
		return err
	}

	pkgs := make([]*pkgCount, 0, len(counts))
	for _, pc := range counts {
		pkgs = append(pkgs, pc)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].pkg < pkgs[j].pkg })

	totalRCB, total := 0, 0
	fmt.Printf("%-28s %8s %6s\n", "package", "LoC", "RCB")
	for _, pc := range pkgs {
		mark := ""
		if pc.rcb {
			mark = "yes"
			totalRCB += pc.lines
		}
		total += pc.lines
		fmt.Printf("%-28s %8d %6s\n", pc.pkg, pc.lines, mark)
	}
	fmt.Printf("\ntotal: %d LoC, RCB: %d LoC (%.1f%%)\n",
		total, totalRCB, 100*float64(totalRCB)/float64(total))
	fmt.Println("paper reference: RCB = 29,732 of 237,270 LoC (12.5%)")
	return nil
}

// countCodeLines counts non-blank, non-comment-only source lines (an
// approximation of SLOCCount, which the paper used).
func countCodeLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if i := strings.Index(line, "*/"); i >= 0 {
				line = strings.TrimSpace(line[i+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		n++
	}
	return n, sc.Err()
}
