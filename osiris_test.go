package osiris

import (
	"testing"

	"repro/internal/kernel"
)

func TestFacadeQuickstart(t *testing.T) {
	var got string
	sys := Boot(Options{Policy: PolicyEnhanced}, func(p *Proc) int {
		if errno := p.DsPut("greeting", "hello"); errno != OK {
			t.Errorf("DsPut = %v", errno)
		}
		got, _ = p.DsGet("greeting")
		return 0
	})
	res := sys.Run(DefaultRunLimit)
	if res.Outcome != OutcomeCompleted {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Reason)
	}
	if got != "hello" {
		t.Fatalf("DsGet = %q", got)
	}
}

func TestFacadeDefaults(t *testing.T) {
	// Zero-valued options must pick the enhanced policy and a usable
	// seed.
	sys := Boot(Options{}, func(p *Proc) int { return 0 })
	if sys.Policy() != PolicyEnhanced {
		t.Fatalf("default policy = %v", sys.Policy())
	}
	if res := sys.Run(DefaultRunLimit); res.Outcome != OutcomeCompleted {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestFacadeTestSuite(t *testing.T) {
	reg := NewRegistry()
	var report SuiteReport
	sys := Boot(Options{Registry: reg}, RegisterTestSuite(reg, &report))
	res := sys.Run(DefaultRunLimit)
	if res.Outcome != OutcomeCompleted {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Reason)
	}
	if !report.AllPassed() {
		t.Fatalf("suite failures: %v", report.FailedNames)
	}
}

func TestFacadeRecoveryVisible(t *testing.T) {
	var firstErr, retryErr Errno
	sys := Boot(Options{Policy: PolicyEnhanced}, func(p *Proc) int {
		firstErr = p.DsPut("k", "v")
		retryErr = p.DsPut("k", "v")
		return 0
	})
	armed := true
	sys.Kernel().SetPointHook(func(_ kernel.Endpoint, _, site string) {
		if armed && site == "ds.put.applied" {
			armed = false
			panic("injected fault")
		}
	})
	res := sys.Run(DefaultRunLimit)
	if res.Outcome != OutcomeCompleted {
		t.Fatalf("outcome = %v (%s)", res.Outcome, res.Reason)
	}
	if firstErr != ECRASH || retryErr != OK {
		t.Fatalf("errnos = %v, %v; want ECRASH then OK", firstErr, retryErr)
	}
	if sys.Recoveries != 1 {
		t.Fatalf("recoveries = %d", sys.Recoveries)
	}
}
